//! Evaluation telemetry: counters, phase timers, per-iteration
//! snapshots, per-rule profiles, and structured trace events.
//!
//! Every evaluation path of the execution engine (and, in skeleton
//! form, the grounded backends) carries an [`EvalStats`] on its
//! outcome. The stats are **always on** — the counters are plain `u64`
//! adds on paths that already touch the counted object, and the
//! committed benchmark baselines gate their overhead at ≤ 5% — and
//! split into two determinism classes:
//!
//! * **thread-invariant**: [`Counters`], `steps`, the per-iteration
//!   [`IterStat`] snapshots, and the per-rule emit/probe/scan counts.
//!   These are exact sums over a task decomposition whose work items
//!   are fixed by the compiled plans, so they are bit-identical at any
//!   `DLO_ENGINE_THREADS` — the cross-thread determinism tests compare
//!   them directly via [`EvalStats::invariants`].
//! * **environmental**: wall-clock phase timers ([`PhaseNanos`]),
//!   per-rule `time_ns`, the resolved thread count, and parallel
//!   fan-out counts. [`EvalStats::invariants`] zeroes these.
//!
//! A [`TraceSink`] optionally receives the same data as structured
//! [`TraceEvent`]s while the run executes: [`JsonlSink`] appends one
//! JSON object per line to a file (the `DLO_TRACE=out.jsonl`
//! quick-start), [`MemorySink`] buffers events for tests. The
//! [`json`] submodule holds the hand-rolled writer/parser pair the
//! sinks and round-trip tests share — no serde, no dependencies.

use std::fmt::Write as _;
use std::io::Write as _;

/// Thread-invariant work counters, summed over the whole run.
///
/// Every field is an exact count of a deterministic event stream:
/// identical across thread counts and across repeated runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Rows read from Δ relations (semi-naïve) or frontier batches
    /// (worklist/priority) — the "delta rows in" of each step.
    pub delta_rows: u64,
    /// Head-key emissions that reached an accumulator (post condition,
    /// post zero-short-circuit).
    pub emits: u64,
    /// Emissions whose head contained a computed cell outside the
    /// interned domain (routed to the fresh accumulator for minting).
    pub fresh_emits: u64,
    /// Index probes issued by join steps (hash-prefix lookups plus
    /// sorted-arrangement searches — the sum is join-mode-invariant).
    pub index_probes: u64,
    /// Probes served by a sorted arrangement (merge-join path). The
    /// merge/hash split depends on the configured join mode, so
    /// [`EvalStats::invariants`] zeroes it; within one mode it is
    /// thread-invariant.
    pub merge_join_steps: u64,
    /// Probes served by a hash-prefix index (hash-join path). Mode-
    /// dependent like [`Counters::merge_join_steps`];
    /// `merge_join_steps + hash_join_steps = index_probes` always.
    pub hash_join_steps: u64,
    /// Arrangement spine batches folded by size-tiered merging while
    /// appends maintained sorted runs. Mode-dependent (0 under hash
    /// joins), thread-invariant within a mode.
    pub arrange_batches_merged: u64,
    /// Candidate tuples scanned: full-scan range lengths plus probe
    /// posting-list lengths, before per-row checks.
    pub tuples_scanned: u64,
    /// Accumulated rows inserted as brand-new keys.
    pub rows_inserted: u64,
    /// Accumulated rows that strictly improved an existing key's value.
    pub rows_improved: u64,
    /// Merges absorbed without change (`old ⊕ new = old`).
    pub merges_absorbed: u64,
    /// Set-valued (magic/demand) rows skipped because the key was
    /// already present — the Bool-lattice short-circuit.
    pub set_valued_shortcircuits: u64,
    /// Interner ids minted for head-computed fresh cells.
    pub minted_ids: u64,
    /// Budget checks performed at phase boundaries (0 when no
    /// [`super::EvalBudget`] ceiling is set — governance off means no
    /// checks at all).
    pub budget_checks: u64,
    /// [`super::CancelToken`] polls performed at phase boundaries (0
    /// when no token is installed).
    pub cancel_polls: u64,
}

impl Counters {
    /// Adds `other` into `self`, field-wise.
    pub fn add(&mut self, other: &Counters) {
        self.delta_rows += other.delta_rows;
        self.emits += other.emits;
        self.fresh_emits += other.fresh_emits;
        self.index_probes += other.index_probes;
        self.merge_join_steps += other.merge_join_steps;
        self.hash_join_steps += other.hash_join_steps;
        self.arrange_batches_merged += other.arrange_batches_merged;
        self.tuples_scanned += other.tuples_scanned;
        self.rows_inserted += other.rows_inserted;
        self.rows_improved += other.rows_improved;
        self.merges_absorbed += other.merges_absorbed;
        self.set_valued_shortcircuits += other.set_valued_shortcircuits;
        self.minted_ids += other.minted_ids;
        self.budget_checks += other.budget_checks;
        self.cancel_polls += other.cancel_polls;
    }

    /// Field-wise difference (`self - earlier`), for per-iteration
    /// snapshots taken as before/after totals.
    pub fn since(&self, earlier: &Counters) -> Counters {
        Counters {
            delta_rows: self.delta_rows - earlier.delta_rows,
            emits: self.emits - earlier.emits,
            fresh_emits: self.fresh_emits - earlier.fresh_emits,
            index_probes: self.index_probes - earlier.index_probes,
            merge_join_steps: self.merge_join_steps - earlier.merge_join_steps,
            hash_join_steps: self.hash_join_steps - earlier.hash_join_steps,
            arrange_batches_merged: self.arrange_batches_merged - earlier.arrange_batches_merged,
            tuples_scanned: self.tuples_scanned - earlier.tuples_scanned,
            rows_inserted: self.rows_inserted - earlier.rows_inserted,
            rows_improved: self.rows_improved - earlier.rows_improved,
            merges_absorbed: self.merges_absorbed - earlier.merges_absorbed,
            set_valued_shortcircuits: self.set_valued_shortcircuits
                - earlier.set_valued_shortcircuits,
            minted_ids: self.minted_ids - earlier.minted_ids,
            budget_checks: self.budget_checks - earlier.budget_checks,
            cancel_polls: self.cancel_polls - earlier.cancel_polls,
        }
    }
}

/// Wall-clock phase timers, in nanoseconds. Environmental — zeroed by
/// [`EvalStats::invariants`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseNanos {
    /// Program compile + EDB interning + state assembly.
    pub setup: u64,
    /// EDB hash-prefix index builds.
    pub edb_index: u64,
    /// Sorted-arrangement builds and co-located index ensures (the
    /// merge-join analogue of `edb_index`; spine merges riding row
    /// appends are counted by
    /// [`Counters::arrange_batches_merged`], not timed separately).
    pub arrange: u64,
    /// The fixpoint loop itself (joins + merges).
    pub eval: u64,
    /// Between-iteration minting of fresh head keys.
    pub mint: u64,
    /// Decoding interned state back into a `Database`.
    pub decode: u64,
}

impl PhaseNanos {
    /// Sum of all phases, in nanoseconds.
    pub fn total(&self) -> u64 {
        self.setup + self.edb_index + self.arrange + self.eval + self.mint + self.decode
    }
}

/// One iteration (semi-naïve) or frontier-batch (worklist/priority)
/// snapshot. Every field is thread-invariant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IterStat {
    /// Step number, 0-based.
    pub step: u64,
    /// Δ rows (or frontier batch rows) driving this step.
    pub delta_rows: u64,
    /// Frontier queue depth after the batch was popped (0 for the
    /// global strategies, which have no queue).
    pub queue_depth: u64,
    /// Emissions reaching accumulators during this step.
    pub emits: u64,
    /// Fresh-cell emissions during this step.
    pub fresh_emits: u64,
    /// New keys inserted by this step's merges.
    pub inserted: u64,
    /// Existing keys strictly improved by this step's merges.
    pub improved: u64,
    /// Merges absorbed without change.
    pub absorbed: u64,
    /// Interner ids minted after this step.
    pub minted: u64,
}

/// Observed cost of one compiled plan, attributed by the plan's stable
/// id. `time_ns` is environmental; every other field is
/// thread-invariant.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuleProfile {
    /// Rule index in program source order.
    pub rule: u64,
    /// Human-readable plan skeleton, e.g. `T :- T * E [Δ@0]`.
    pub label: String,
    /// Plan family: `"seed"`, `"delta"`, or `"worklist"`.
    pub kind: String,
    /// Join strategy the active join mode resolves this plan to:
    /// `"merge"` (every probing step arranged), `"hash"` (every
    /// probing step hash-indexed), `"mixed"`, or `"scan"` (no probing
    /// steps). Mode-dependent — zeroed (emptied) by
    /// [`EvalStats::invariants`].
    pub join: String,
    /// Emissions this plan produced.
    pub emits: u64,
    /// Fresh-cell emissions this plan produced.
    pub fresh_emits: u64,
    /// Index probes this plan issued.
    pub probes: u64,
    /// Candidate tuples this plan scanned.
    pub scanned: u64,
    /// Wall-clock nanoseconds spent running this plan.
    pub time_ns: u64,
}

/// How many per-iteration snapshots [`EvalStats::iterations`] retains
/// before switching to totals-only (frontier runs can take millions of
/// batches; the cutoff is deterministic, and a [`TraceSink`] still
/// streams every event).
pub const ITER_SNAPSHOT_CAP: usize = 4096;

/// The always-on evaluation statistics carried by every outcome.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Strategy that produced the outcome: `"naive"`, `"seminaive"`,
    /// `"worklist"`, or `"priority"` (empty for backends that predate
    /// telemetry, e.g. the grounded reference evaluators).
    pub strategy: String,
    /// Steps processed (global iterations or frontier batches —
    /// mirrors the outcome's step count).
    pub steps: u64,
    /// Resolved worker-thread count (environmental).
    pub threads: u64,
    /// Tasks fanned over the worker pool (environmental — depends on
    /// the thread count and parallel thresholds).
    pub tasks_spawned: u64,
    /// Iterations/batches that ran their plans in parallel
    /// (environmental).
    pub parallel_batches: u64,
    /// Whole-run work counters (thread-invariant).
    pub counters: Counters,
    /// Wall-clock phase timers (environmental).
    pub phases: PhaseNanos,
    /// The first [`ITER_SNAPSHOT_CAP`] per-step snapshots
    /// (thread-invariant).
    pub iterations: Vec<IterStat>,
    /// Snapshots dropped past the cap (thread-invariant).
    pub iterations_dropped: u64,
    /// The final step's snapshot, always retained — this is what the
    /// divergence diagnostics print.
    pub last_iter: Option<IterStat>,
    /// Per-plan observed costs, ordered by plan id.
    pub rules: Vec<RuleProfile>,
}

impl EvalStats {
    /// The invariant projection: a copy with every environmental field
    /// (timers, thread count, fan-out counts, per-rule times) zeroed,
    /// **and** every join-strategy attribution field zeroed — the
    /// merge/hash split of `index_probes`, the spine-merge count, and
    /// the per-rule `join` tag depend on the configured join mode the
    /// way timers depend on the host, not on the program. Two runs of
    /// the same program at different `DLO_ENGINE_THREADS` *or*
    /// different join modes produce **equal** projections; the
    /// determinism tests assert exactly that.
    pub fn invariants(&self) -> EvalStats {
        let mut inv = self.clone();
        inv.threads = 0;
        inv.tasks_spawned = 0;
        inv.parallel_batches = 0;
        inv.phases = PhaseNanos::default();
        inv.counters.merge_join_steps = 0;
        inv.counters.hash_join_steps = 0;
        inv.counters.arrange_batches_merged = 0;
        for r in &mut inv.rules {
            r.time_ns = 0;
            r.join.clear();
        }
        inv
    }

    /// Records one per-step snapshot, honoring the retention cap and
    /// maintaining [`EvalStats::last_iter`].
    pub fn push_iteration(&mut self, it: IterStat) {
        if self.iterations.len() < ITER_SNAPSHOT_CAP {
            self.iterations.push(it);
        } else {
            self.iterations_dropped += 1;
        }
        self.last_iter = Some(it);
    }

    /// The EXPLAIN/profile report: phase timings, whole-run totals,
    /// and per-plan observed costs sorted by time (descending, plan
    /// order on ties).
    pub fn explain(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "== eval profile: strategy={}, steps={}, threads={} ==",
            self.strategy, self.steps, self.threads
        );
        let p = &self.phases;
        let _ = writeln!(
            s,
            "phases (ms): setup {:.3} | edb index {:.3} | arrange {:.3} | eval {:.3} | \
             mint {:.3} | decode {:.3}",
            ms(p.setup),
            ms(p.edb_index),
            ms(p.arrange),
            ms(p.eval),
            ms(p.mint),
            ms(p.decode)
        );
        let c = &self.counters;
        let _ = writeln!(
            s,
            "totals: delta rows {} | emits {} (fresh {}) | probes {} (merge {} / hash {}) | \
             scanned {} | inserted {} | improved {} | absorbed {} | sv-shortcircuits {} | \
             minted {} | batches merged {}",
            c.delta_rows,
            c.emits,
            c.fresh_emits,
            c.index_probes,
            c.merge_join_steps,
            c.hash_join_steps,
            c.tuples_scanned,
            c.rows_inserted,
            c.rows_improved,
            c.merges_absorbed,
            c.set_valued_shortcircuits,
            c.minted_ids,
            c.arrange_batches_merged
        );
        if self.tasks_spawned > 0 {
            let _ = writeln!(
                s,
                "parallelism: {} tasks over {} parallel batches",
                self.tasks_spawned, self.parallel_batches
            );
        }
        if !self.rules.is_empty() {
            let _ = writeln!(s, "per-plan costs (by observed time):");
            let mut order: Vec<usize> = (0..self.rules.len()).collect();
            order.sort_by(|&a, &b| {
                self.rules[b]
                    .time_ns
                    .cmp(&self.rules[a].time_ns)
                    .then(a.cmp(&b))
            });
            for i in order {
                let r = &self.rules[i];
                let _ = writeln!(
                    s,
                    "  [{:<8}] r{}  {:<40}  join {:<5} emits {:<10} probes {:<10} \
                     scanned {:<12} time {:.3}ms",
                    r.kind,
                    r.rule,
                    r.label,
                    if r.join.is_empty() { "-" } else { &r.join },
                    r.emits,
                    r.probes,
                    r.scanned,
                    ms(r.time_ns)
                );
            }
        }
        s
    }

    /// One-line JSON encoding (the shape [`json::parse`] round-trips).
    pub fn to_json(&self) -> String {
        let mut w = json::Writer::new();
        w.obj_open();
        w.str_field("strategy", &self.strategy);
        w.u64_field("steps", self.steps);
        w.u64_field("threads", self.threads);
        w.u64_field("tasks_spawned", self.tasks_spawned);
        w.u64_field("parallel_batches", self.parallel_batches);
        w.key("counters");
        write_counters(&mut w, &self.counters);
        w.key("phases");
        w.obj_open();
        w.u64_field("setup_ns", self.phases.setup);
        w.u64_field("edb_index_ns", self.phases.edb_index);
        w.u64_field("arrange_ns", self.phases.arrange);
        w.u64_field("eval_ns", self.phases.eval);
        w.u64_field("mint_ns", self.phases.mint);
        w.u64_field("decode_ns", self.phases.decode);
        w.obj_close();
        w.key("iterations");
        w.arr_open();
        for it in &self.iterations {
            write_iter(&mut w, it);
        }
        w.arr_close();
        w.u64_field("iterations_dropped", self.iterations_dropped);
        w.key("rules");
        w.arr_open();
        for r in &self.rules {
            w.obj_open();
            w.u64_field("rule", r.rule);
            w.str_field("label", &r.label);
            w.str_field("kind", &r.kind);
            w.str_field("join", &r.join);
            w.u64_field("emits", r.emits);
            w.u64_field("fresh_emits", r.fresh_emits);
            w.u64_field("probes", r.probes);
            w.u64_field("scanned", r.scanned);
            w.u64_field("time_ns", r.time_ns);
            w.obj_close();
        }
        w.arr_close();
        w.obj_close();
        w.finish()
    }
}

fn write_counters(w: &mut json::Writer, c: &Counters) {
    w.obj_open();
    w.u64_field("delta_rows", c.delta_rows);
    w.u64_field("emits", c.emits);
    w.u64_field("fresh_emits", c.fresh_emits);
    w.u64_field("index_probes", c.index_probes);
    w.u64_field("merge_join_steps", c.merge_join_steps);
    w.u64_field("hash_join_steps", c.hash_join_steps);
    w.u64_field("arrange_batches_merged", c.arrange_batches_merged);
    w.u64_field("tuples_scanned", c.tuples_scanned);
    w.u64_field("rows_inserted", c.rows_inserted);
    w.u64_field("rows_improved", c.rows_improved);
    w.u64_field("merges_absorbed", c.merges_absorbed);
    w.u64_field("set_valued_shortcircuits", c.set_valued_shortcircuits);
    w.u64_field("minted_ids", c.minted_ids);
    w.u64_field("budget_checks", c.budget_checks);
    w.u64_field("cancel_polls", c.cancel_polls);
    w.obj_close();
}

fn write_iter(w: &mut json::Writer, it: &IterStat) {
    w.obj_open();
    w.u64_field("step", it.step);
    w.u64_field("delta_rows", it.delta_rows);
    w.u64_field("queue_depth", it.queue_depth);
    w.u64_field("emits", it.emits);
    w.u64_field("fresh_emits", it.fresh_emits);
    w.u64_field("inserted", it.inserted);
    w.u64_field("improved", it.improved);
    w.u64_field("absorbed", it.absorbed);
    w.u64_field("minted", it.minted);
    w.obj_close();
}

/// A structured evaluation event, streamed to a [`TraceSink`] while the
/// run executes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// The run began: resolved strategy and thread count.
    RunStart {
        /// Strategy name (as in [`EvalStats::strategy`]).
        strategy: String,
        /// Resolved worker-thread count.
        threads: u64,
    },
    /// A non-loop phase finished.
    Phase {
        /// Phase name: `"setup"`, `"edb_index"`, or `"decode"`.
        name: String,
        /// Wall-clock nanoseconds.
        nanos: u64,
    },
    /// One iteration / frontier batch completed.
    Iteration(IterStat),
    /// The run is aborting before a fixpoint: a budget ceiling,
    /// deadline, cancellation, or contained worker panic stopped it.
    /// Always followed by a `RunEnd` with `converged: false`, so sinks
    /// flush on aborted runs exactly as on completed ones.
    Abort {
        /// The failure kind tag (see `EvalError::kind`): `"budget"`,
        /// `"deadline"`, `"cancelled"`, or `"worker_panic"`.
        reason: String,
        /// Steps completed when the run stopped.
        steps: u64,
        /// Which checkpoint granularity detected the stop: `"phase"`
        /// (seed/setup boundary), `"iteration"` (naïve/semi-naïve
        /// loop), `"generation"` (FIFO worklist batch), or `"bucket"`
        /// (priority frontier pop). Distinguishes a deadline caught at
        /// a coarse boundary from one caught mid-loop.
        granularity: String,
        /// Rows already settled (exact under the priority strategy's
        /// settled-on-pop invariant, 0 when nothing is provably
        /// settled) at the moment the checkpoint fired.
        settled_rows: u64,
    },
    /// The run finished.
    RunEnd {
        /// Steps processed.
        steps: u64,
        /// Whether the run reached a fixpoint (vs hitting its cap).
        converged: bool,
    },
}

impl TraceEvent {
    /// One-line JSON encoding, tagged by an `"event"` field.
    pub fn to_json(&self) -> String {
        let mut w = json::Writer::new();
        w.obj_open();
        match self {
            TraceEvent::RunStart { strategy, threads } => {
                w.str_field("event", "run_start");
                w.str_field("strategy", strategy);
                w.u64_field("threads", *threads);
            }
            TraceEvent::Phase { name, nanos } => {
                w.str_field("event", "phase");
                w.str_field("name", name);
                w.u64_field("nanos", *nanos);
            }
            TraceEvent::Iteration(it) => {
                w.str_field("event", "iteration");
                w.u64_field("step", it.step);
                w.u64_field("delta_rows", it.delta_rows);
                w.u64_field("queue_depth", it.queue_depth);
                w.u64_field("emits", it.emits);
                w.u64_field("fresh_emits", it.fresh_emits);
                w.u64_field("inserted", it.inserted);
                w.u64_field("improved", it.improved);
                w.u64_field("absorbed", it.absorbed);
                w.u64_field("minted", it.minted);
            }
            TraceEvent::Abort {
                reason,
                steps,
                granularity,
                settled_rows,
            } => {
                w.str_field("event", "abort");
                w.str_field("reason", reason);
                w.u64_field("steps", *steps);
                w.str_field("granularity", granularity);
                w.u64_field("settled_rows", *settled_rows);
            }
            TraceEvent::RunEnd { steps, converged } => {
                w.str_field("event", "run_end");
                w.u64_field("steps", *steps);
                w.bool_field("converged", *converged);
            }
        }
        w.obj_close();
        w.finish()
    }
}

/// A receiver of structured per-run [`TraceEvent`]s.
///
/// Contract: [`TraceSink::record`] is called from the evaluating
/// thread only (never from worker tasks), in deterministic event
/// order — `RunStart`, then phases/iterations as they complete, then
/// `RunEnd`. Sinks must not panic on I/O failure (drop the event
/// instead); a panicking sink would poison the evaluation.
pub trait TraceSink {
    /// Receives one event. Must be cheap relative to an iteration.
    fn record(&mut self, event: &TraceEvent);
}

/// A [`TraceSink`] appending one JSON object per line to a file — the
/// `DLO_TRACE=out.jsonl` format.
pub struct JsonlSink {
    out: std::io::BufWriter<std::fs::File>,
}

impl JsonlSink {
    /// Opens `path` in append mode (several runs of one process share
    /// a trace file).
    pub fn create(path: &std::path::Path) -> std::io::Result<JsonlSink> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(JsonlSink {
            out: std::io::BufWriter::new(file),
        })
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, event: &TraceEvent) {
        // I/O failure drops the event — tracing must not fail the run.
        let _ = writeln!(self.out, "{}", event.to_json());
        if matches!(event, TraceEvent::RunEnd { .. }) {
            let _ = self.out.flush();
        }
    }
}

/// An in-memory [`TraceSink`] for tests. Cloning shares the buffer, so
/// a test can hand one clone to the engine and inspect the other after
/// the run.
#[derive(Clone, Default)]
pub struct MemorySink {
    events: std::sync::Arc<std::sync::Mutex<Vec<TraceEvent>>>,
}

impl MemorySink {
    /// A snapshot of every event recorded so far, in order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().map(|e| e.clone()).unwrap_or_default()
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: &TraceEvent) {
        if let Ok(mut events) = self.events.lock() {
            events.push(event.clone());
        }
    }
}

/// A shared, cloneable handle to a [`TraceSink`], carried on the
/// engine's options struct. Events are serialized through a mutex; the
/// drivers only emit from the coordinating thread, so there is no
/// contention.
#[derive(Clone)]
pub struct TraceHandle(std::sync::Arc<std::sync::Mutex<dyn TraceSink + Send>>);

impl TraceHandle {
    /// Wraps a sink.
    pub fn new(sink: impl TraceSink + Send + 'static) -> TraceHandle {
        TraceHandle(std::sync::Arc::new(std::sync::Mutex::new(sink)))
    }

    /// Records one event (poisoned-mutex recording is skipped — a
    /// panicked sink must not cascade).
    pub fn emit(&self, event: &TraceEvent) {
        if let Ok(mut sink) = self.0.lock() {
            sink.record(event);
        }
    }
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TraceHandle(..)")
    }
}

pub mod json {
    //! A minimal JSON writer/parser pair — just enough for the
    //! telemetry formats (objects, arrays, strings, booleans, and
    //! non-negative integer numbers), with no dependencies. The parser
    //! exists so trace files and stats blocks can be round-trip
    //! *tested* (and validated by the benchmark guard) without serde.

    /// An incremental JSON writer with automatic comma placement.
    #[derive(Default)]
    pub struct Writer {
        buf: String,
        need_comma: Vec<bool>,
    }

    impl Writer {
        /// A fresh writer.
        pub fn new() -> Writer {
            Writer::default()
        }

        fn pre_value(&mut self) {
            if let Some(flag) = self.need_comma.last_mut() {
                if *flag {
                    self.buf.push(',');
                }
                *flag = true;
            }
        }

        /// Opens an object (`{`).
        pub fn obj_open(&mut self) {
            self.pre_value();
            self.buf.push('{');
            self.need_comma.push(false);
        }

        /// Closes an object (`}`).
        pub fn obj_close(&mut self) {
            self.need_comma.pop();
            self.buf.push('}');
        }

        /// Opens an array (`[`).
        pub fn arr_open(&mut self) {
            self.pre_value();
            self.buf.push('[');
            self.need_comma.push(false);
        }

        /// Closes an array (`]`).
        pub fn arr_close(&mut self) {
            self.need_comma.pop();
            self.buf.push(']');
        }

        /// Writes an object key; the next value call supplies its value.
        pub fn key(&mut self, k: &str) {
            self.pre_value();
            escape_into(&mut self.buf, k);
            self.buf.push(':');
            // The upcoming value must not emit another comma.
            if let Some(flag) = self.need_comma.last_mut() {
                *flag = false;
            }
        }

        /// Writes `"k": "v"`.
        pub fn str_field(&mut self, k: &str, v: &str) {
            self.key(k);
            self.pre_value();
            escape_into(&mut self.buf, v);
        }

        /// Writes `"k": n`.
        pub fn u64_field(&mut self, k: &str, n: u64) {
            self.key(k);
            self.pre_value();
            let _ = std::fmt::Write::write_fmt(&mut self.buf, format_args!("{n}"));
        }

        /// Writes `"k": true|false`.
        pub fn bool_field(&mut self, k: &str, b: bool) {
            self.key(k);
            self.pre_value();
            self.buf.push_str(if b { "true" } else { "false" });
        }

        /// The accumulated JSON text.
        pub fn finish(self) -> String {
            self.buf
        }
    }

    fn escape_into(buf: &mut String, s: &str) {
        buf.push('"');
        for c in s.chars() {
            match c {
                '"' => buf.push_str("\\\""),
                '\\' => buf.push_str("\\\\"),
                '\n' => buf.push_str("\\n"),
                '\r' => buf.push_str("\\r"),
                '\t' => buf.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = std::fmt::Write::write_fmt(buf, format_args!("\\u{:04x}", c as u32));
                }
                c => buf.push(c),
            }
        }
        buf.push('"');
    }

    /// A parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number (integers round-trip exactly up to 2⁵³).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, insertion-ordered.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Object-field lookup (first match), `None` on non-objects.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The value as a `u64`, if it is a non-negative integer number.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
                _ => None,
            }
        }

        /// The value as an `f64` number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The value as a string slice.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The value as an array slice.
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }
    }

    /// Parses one JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, pos))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'{') => {
                *pos += 1;
                let mut fields = vec![];
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    skip_ws(b, pos);
                    let key = match parse_value(b, pos)? {
                        Value::Str(s) => s,
                        other => return Err(format!("object key must be a string, got {other:?}")),
                    };
                    expect(b, pos, b':')?;
                    let val = parse_value(b, pos)?;
                    fields.push((key, val));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = vec![];
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                    }
                }
            }
            Some(b'"') => {
                *pos += 1;
                let mut s = String::new();
                loop {
                    match b.get(*pos) {
                        None => return Err("unterminated string".into()),
                        Some(b'"') => {
                            *pos += 1;
                            return Ok(Value::Str(s));
                        }
                        Some(b'\\') => {
                            *pos += 1;
                            match b.get(*pos) {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'/') => s.push('/'),
                                Some(b'n') => s.push('\n'),
                                Some(b'r') => s.push('\r'),
                                Some(b't') => s.push('\t'),
                                Some(b'u') => {
                                    let hex =
                                        b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                                    let code = u32::from_str_radix(
                                        std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                        16,
                                    )
                                    .map_err(|_| "bad \\u escape")?;
                                    s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                                    *pos += 4;
                                }
                                other => return Err(format!("bad escape {other:?}")),
                            }
                            *pos += 1;
                        }
                        Some(_) => {
                            // Consume one UTF-8 scalar.
                            let rest = &b[*pos..];
                            let text =
                                std::str::from_utf8(rest).map_err(|_| "invalid UTF-8 in string")?;
                            let c = text.chars().next().unwrap();
                            s.push(c);
                            *pos += c.len_utf8();
                        }
                    }
                }
            }
            Some(b't') if b[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if b[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(Value::Bool(false))
            }
            Some(b'n') if b[*pos..].starts_with(b"null") => {
                *pos += 4;
                Ok(Value::Null)
            }
            Some(_) => {
                let start = *pos;
                if b.get(*pos) == Some(&b'-') {
                    *pos += 1;
                }
                while *pos < b.len()
                    && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
                {
                    *pos += 1;
                }
                let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number")?;
                text.parse::<f64>()
                    .map(Value::Num)
                    .map_err(|e| format!("bad number {text:?}: {e}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_json_round_trips_through_the_parser() {
        let mut stats = EvalStats {
            strategy: "seminaive".into(),
            steps: 7,
            threads: 2,
            ..EvalStats::default()
        };
        stats.counters.emits = 41;
        stats.counters.rows_inserted = 13;
        stats.push_iteration(IterStat {
            step: 0,
            delta_rows: 5,
            emits: 41,
            inserted: 13,
            ..IterStat::default()
        });
        stats.rules.push(RuleProfile {
            rule: 0,
            label: "T :- T * E".into(),
            kind: "delta".into(),
            emits: 41,
            probes: 9,
            ..RuleProfile::default()
        });
        let parsed = json::parse(&stats.to_json()).expect("valid JSON");
        assert_eq!(parsed.get("strategy").unwrap().as_str(), Some("seminaive"));
        assert_eq!(parsed.get("steps").unwrap().as_u64(), Some(7));
        let counters = parsed.get("counters").unwrap();
        assert_eq!(counters.get("emits").unwrap().as_u64(), Some(41));
        let iters = parsed.get("iterations").unwrap().as_arr().unwrap();
        assert_eq!(iters.len(), 1);
        assert_eq!(iters[0].get("inserted").unwrap().as_u64(), Some(13));
        let rules = parsed.get("rules").unwrap().as_arr().unwrap();
        assert_eq!(rules[0].get("label").unwrap().as_str(), Some("T :- T * E"));
    }

    #[test]
    fn trace_events_encode_and_round_trip() {
        let events = vec![
            TraceEvent::RunStart {
                strategy: "priority".into(),
                threads: 4,
            },
            TraceEvent::Phase {
                name: "setup".into(),
                nanos: 123,
            },
            TraceEvent::Iteration(IterStat {
                step: 0,
                delta_rows: 2,
                queue_depth: 9,
                emits: 4,
                ..IterStat::default()
            }),
            TraceEvent::RunEnd {
                steps: 1,
                converged: true,
            },
        ];
        for ev in &events {
            let parsed = json::parse(&ev.to_json()).expect("valid JSON");
            assert!(parsed.get("event").is_some());
        }
        let parsed = json::parse(&events[3].to_json()).unwrap();
        assert_eq!(parsed.get("converged"), Some(&json::Value::Bool(true)));
    }

    #[test]
    fn abort_event_encodes_reason_and_steps() {
        let ev = TraceEvent::Abort {
            reason: "deadline".into(),
            steps: 42,
            granularity: "bucket".into(),
            settled_rows: 17,
        };
        let parsed = json::parse(&ev.to_json()).expect("valid JSON");
        assert_eq!(parsed.get("event").unwrap().as_str(), Some("abort"));
        assert_eq!(parsed.get("reason").unwrap().as_str(), Some("deadline"));
        assert_eq!(parsed.get("steps").unwrap().as_u64(), Some(42));
        assert_eq!(parsed.get("granularity").unwrap().as_str(), Some("bucket"));
        assert_eq!(parsed.get("settled_rows").unwrap().as_u64(), Some(17));
    }

    #[test]
    fn governance_counters_round_trip_and_diff() {
        let mut stats = EvalStats::default();
        stats.counters.budget_checks = 9;
        stats.counters.cancel_polls = 4;
        let parsed = json::parse(&stats.to_json()).unwrap();
        let counters = parsed.get("counters").unwrap();
        assert_eq!(counters.get("budget_checks").unwrap().as_u64(), Some(9));
        assert_eq!(counters.get("cancel_polls").unwrap().as_u64(), Some(4));
        let earlier = Counters {
            budget_checks: 2,
            cancel_polls: 1,
            ..Counters::default()
        };
        let d = stats.counters.since(&earlier);
        assert_eq!(d.budget_checks, 7);
        assert_eq!(d.cancel_polls, 3);
        let mut sum = Counters::default();
        sum.add(&stats.counters);
        assert_eq!(sum.budget_checks, 9);
        assert_eq!(sum.cancel_polls, 4);
    }

    #[test]
    fn memory_sink_buffers_events_in_order() {
        let sink = MemorySink::default();
        let handle = TraceHandle::new(sink.clone());
        handle.emit(&TraceEvent::RunStart {
            strategy: "naive".into(),
            threads: 1,
        });
        handle.emit(&TraceEvent::RunEnd {
            steps: 3,
            converged: false,
        });
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], TraceEvent::RunStart { .. }));
        assert!(matches!(
            events[1],
            TraceEvent::RunEnd {
                steps: 3,
                converged: false
            }
        ));
    }

    #[test]
    fn invariants_zeroes_environmental_fields_only() {
        let mut stats = EvalStats {
            strategy: "worklist".into(),
            steps: 3,
            threads: 8,
            tasks_spawned: 40,
            parallel_batches: 2,
            ..EvalStats::default()
        };
        stats.phases.eval = 999;
        stats.counters.emits = 17;
        stats.rules.push(RuleProfile {
            time_ns: 555,
            emits: 17,
            ..RuleProfile::default()
        });
        let inv = stats.invariants();
        assert_eq!(inv.threads, 0);
        assert_eq!(inv.tasks_spawned, 0);
        assert_eq!(inv.phases, PhaseNanos::default());
        assert_eq!(inv.rules[0].time_ns, 0);
        assert_eq!(inv.counters.emits, 17);
        assert_eq!(inv.strategy, "worklist");
        assert_eq!(inv.steps, 3);
    }

    #[test]
    fn string_escaping_survives_the_round_trip() {
        let mut w = json::Writer::new();
        w.obj_open();
        w.str_field("label", "a \"quoted\"\nlabel\twith\\slashes");
        w.obj_close();
        let parsed = json::parse(&w.finish()).unwrap();
        assert_eq!(
            parsed.get("label").unwrap().as_str(),
            Some("a \"quoted\"\nlabel\twith\\slashes")
        );
    }
}
