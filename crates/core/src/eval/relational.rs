//! Relational (tuple-at-a-time) evaluation — the production-engine path.
//!
//! The grounded backend (\[`crate::ground`\]) materializes one polynomial
//! per ground IDB atom up front; faithful to eq. (27), but the grounding
//! itself costs `O(|ADom|^vars)` in the worst case. This backend instead
//! evaluates the immediate consequence operator *directly on relations*
//! each iteration, the way Soufflé-style engines run datalog: every
//! sum-product is a join over the supports of its atoms and of the
//! positive condition atoms, `⊕`-aggregated into the head relation.
//!
//! Soundness requires supports to be exhaustive, i.e. absent = `0` =
//! absorbing: the backend is therefore restricted to naturally ordered
//! semirings (the same restriction as sparse grounding; the dense grounded
//! backend remains the reference for exotic POPS like the lifted reals).
//!
//! Both the naïve loop and a semi-naïve loop (the relation-level reading
//! of Theorem 6.5: one join per IDB occurrence, with that occurrence
//! restricted to the Δ-support, earlier occurrences reading the new state
//! and later ones the old state) are provided; both are cross-checked
//! against the grounded backend in tests.

use crate::ast::{Atom, Program, SumProduct, Term, Var};
use crate::eval::EvalOutcome;
use crate::formula::{eval_args, eval_term, Formula, Valuation};
use crate::relation::{BoolDatabase, Database, Relation};
use crate::value::Constant;
use dlo_pops::{Bool, CompleteDistributiveDioid, NaturallyOrdered, Pops};
use std::collections::BTreeSet;

/// Which state an IDB occurrence reads during a join (Theorem 6.5's
/// prefix-new / delta / suffix-old split; naïve always reads `New`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum IdbSource {
    New,
    Old,
    Delta,
}

/// The IDB states visible to a join.
struct IdbStates<'a, P: Pops> {
    new: &'a Database<P>,
    old: &'a Database<P>,
    delta: &'a Database<P>,
}

// Manual impls: references are Copy regardless of `P` (derive would
// incorrectly demand `P: Copy`).
impl<P: Pops> Clone for IdbStates<'_, P> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<P: Pops> Copy for IdbStates<'_, P> {}

impl<'a, P: Pops> IdbStates<'a, P> {
    fn get(&self, src: IdbSource, pred: &str) -> Option<&'a Relation<P>> {
        match src {
            IdbSource::New => self.new.get(pred),
            IdbSource::Old => self.old.get(pred),
            IdbSource::Delta => self.delta.get(pred),
        }
    }
}

/// A join participant.
enum Binder<'a, P: Pops> {
    /// A POPS factor: binds variables and supplies the value for factor
    /// slot `fi`.
    Factor {
        atom: &'a Atom,
        rel: Option<&'a Relation<P>>,
        fi: usize,
    },
    /// A positive Boolean condition atom: binds variables only.
    Guard {
        atom: &'a Atom,
        rel: Option<&'a Relation<Bool>>,
    },
}

/// Extracts `Var = constant` bindings from the conjunctive spine of a
/// condition — these pre-bind variables so indicator-style sum-products
/// (`{1 | X = a}`) don't fall back to full-ADom enumeration.
fn equality_bindings(phi: &Formula, theta: &mut Valuation) {
    match phi {
        Formula::And(a, b) => {
            equality_bindings(a, theta);
            equality_bindings(b, theta);
        }
        Formula::Cmp(Term::Var(v), crate::formula::CmpOp::Eq, Term::Const(c))
        | Formula::Cmp(Term::Const(c), crate::formula::CmpOp::Eq, Term::Var(v)) => {
            theta.entry(*v).or_insert_with(|| c.clone());
        }
        _ => {}
    }
}

/// Unifies `atom.args` against `tuple` under `theta`; on success returns
/// the variables newly bound (which the caller must unbind). A
/// key-function argument whose variables are not yet bound cannot be
/// evaluated here: it is accepted provisionally and pushed onto
/// `deferred` as a `(term, matched constant)` obligation that [`join`]
/// re-verifies once the valuation is complete (the caller truncates
/// `deferred` when it backtracks past this tuple).
fn unify<'a>(
    atom: &'a Atom,
    tuple: &'a [Constant],
    theta: &mut Valuation,
    deferred: &mut Vec<(&'a Term, &'a Constant)>,
) -> Option<Vec<Var>> {
    if tuple.len() != atom.args.len() {
        return None;
    }
    let mut bound_here: Vec<Var> = vec![];
    for (arg, c) in atom.args.iter().zip(tuple.iter()) {
        let ok = match arg {
            Term::Var(v) => match theta.get(v) {
                Some(existing) => existing == c,
                None => {
                    theta.insert(*v, c.clone());
                    bound_here.push(*v);
                    true
                }
            },
            term => match eval_term(term, theta) {
                None => {
                    deferred.push((term, c));
                    true
                }
                Some(val) => &val == c,
            },
        };
        if !ok {
            for b in &bound_here {
                theta.remove(b);
            }
            return None;
        }
    }
    Some(bound_here)
}

/// Nested-loop join over `binders`, then ADom enumeration for leftover
/// variables; calls `visit` once per (possibly repeated) full valuation —
/// the caller deduplicates. Deferred key-function obligations collected
/// by [`unify`] are verified here at every complete valuation, so a
/// tuple provisionally matched against a then-unevaluable term (e.g.
/// `A(X - 1)` unified before `X` is bound) only survives if the term
/// really evaluates to the tuple's constant.
#[allow(clippy::too_many_arguments)]
fn join<'a, P: Pops>(
    binders: &[Binder<'a, P>],
    vars: &[Var],
    adom: &[Constant],
    theta: &mut Valuation,
    depth: usize,
    values: &mut Vec<Option<&'a P>>,
    deferred: &mut Vec<(&'a Term, &'a Constant)>,
    visit: &mut impl FnMut(&Valuation, &[Option<&'a P>]),
) {
    if depth == binders.len() {
        fn fill<'a, P: Pops>(
            vars: &[Var],
            adom: &[Constant],
            theta: &mut Valuation,
            values: &[Option<&'a P>],
            deferred: &[(&'a Term, &'a Constant)],
            visit: &mut impl FnMut(&Valuation, &[Option<&'a P>]),
        ) {
            match vars.iter().find(|v| !theta.contains_key(v)) {
                None => {
                    let obligations_hold = deferred
                        .iter()
                        .all(|(t, c)| eval_term(t, theta).as_ref() == Some(*c));
                    if obligations_hold {
                        visit(theta, values)
                    }
                }
                Some(&v) => {
                    for c in adom {
                        theta.insert(v, c.clone());
                        fill(vars, adom, theta, values, deferred, visit);
                    }
                    theta.remove(&v);
                }
            }
        }
        fill(vars, adom, theta, values, deferred, visit);
        return;
    }
    match &binders[depth] {
        Binder::Factor { atom, rel, fi } => {
            let Some(rel) = rel else { return }; // missing relation: all 0
            for (tuple, value) in rel.support() {
                let dlen = deferred.len();
                if let Some(bound) = unify(atom, tuple, theta, deferred) {
                    values[*fi] = Some(value);
                    join(
                        binders,
                        vars,
                        adom,
                        theta,
                        depth + 1,
                        values,
                        deferred,
                        visit,
                    );
                    values[*fi] = None;
                    for b in &bound {
                        theta.remove(b);
                    }
                }
                deferred.truncate(dlen);
            }
        }
        Binder::Guard { atom, rel } => {
            let Some(rel) = rel else { return }; // guard over empty: false
            for (tuple, _) in rel.support() {
                let dlen = deferred.len();
                if let Some(bound) = unify(atom, tuple, theta, deferred) {
                    join(
                        binders,
                        vars,
                        adom,
                        theta,
                        depth + 1,
                        values,
                        deferred,
                        visit,
                    );
                    for b in &bound {
                        theta.remove(b);
                    }
                }
                deferred.truncate(dlen);
            }
        }
    }
}

/// Evaluates one sum-product under a choice of per-occurrence IDB sources,
/// `⊕`-merging the results into `out`.
#[allow(clippy::too_many_arguments)]
fn eval_sum_product<P: NaturallyOrdered>(
    head: &Atom,
    sp: &SumProduct<P>,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    idb_preds: &BTreeSet<String>,
    occ_source: impl Fn(usize) -> IdbSource,
    states: IdbStates<'_, P>,
    adom: &[Constant],
    out: &mut Relation<P>,
) {
    let mut vars: Vec<Var> = vec![];
    head.vars(&mut vars);
    for v in sp.vars() {
        if !vars.contains(&v) {
            vars.push(v);
        }
    }

    let mut theta = Valuation::new();
    equality_bindings(&sp.condition, &mut theta);

    let mut binders: Vec<Binder<P>> = vec![];
    let mut idb_occurrence = 0usize;
    for (fi, f) in sp.factors.iter().enumerate() {
        let rel = if idb_preds.contains(&f.atom.pred) {
            let src = occ_source(idb_occurrence);
            idb_occurrence += 1;
            states.get(src, &f.atom.pred)
        } else {
            pops_edb.get(&f.atom.pred)
        };
        binders.push(Binder::Factor {
            atom: &f.atom,
            rel,
            fi,
        });
    }
    for a in sp.condition.conjunctive_atoms() {
        binders.push(Binder::Guard {
            atom: a,
            rel: bool_edb.get(&a.pred),
        });
    }

    let mut seen: BTreeSet<Vec<Constant>> = BTreeSet::new();
    let mut values: Vec<Option<&P>> = vec![None; sp.factors.len()];
    let mut deferred: Vec<(&Term, &Constant)> = vec![];
    join(
        &binders,
        &vars,
        adom,
        &mut theta,
        0,
        &mut values,
        &mut deferred,
        &mut |theta, values| {
            let key: Vec<Constant> = vars
                .iter()
                .map(|v| theta.get(v).expect("full valuation").clone())
                .collect();
            if !seen.insert(key) {
                return;
            }
            if !sp.condition.eval(theta, bool_edb) {
                return;
            }
            let mut acc = sp.coeff.clone().unwrap_or_else(P::one);
            for (fi, f) in sp.factors.iter().enumerate() {
                let Some(v) = values[fi] else { return };
                let v = match &f.func {
                    Some(func) => func.apply(v),
                    None => v.clone(),
                };
                acc = acc.mul(&v);
                if acc.is_zero() {
                    return; // 0 absorbs: nothing to merge
                }
            }
            if let Some(tuple) = eval_args(head, theta) {
                out.merge(tuple, acc);
            }
        },
    );
}

fn empty_idbs<P: Pops>(program: &Program<P>) -> Database<P> {
    let mut db = Database::new();
    for rule in &program.rules {
        db.get_or_insert(&rule.head.pred, rule.head.args.len());
    }
    db
}

/// One application of the ICO over relations: `F(current)`.
fn apply_ico_relational<P: NaturallyOrdered>(
    program: &Program<P>,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    current: &Database<P>,
    adom: &[Constant],
    idb_preds: &BTreeSet<String>,
) -> Database<P> {
    let mut next = empty_idbs(program);
    let states = IdbStates {
        new: current,
        old: current,
        delta: current,
    };
    for rule in &program.rules {
        for sp in &rule.body {
            let mut out = next
                .get(&rule.head.pred)
                .cloned()
                .expect("pre-seeded head relation");
            eval_sum_product(
                &rule.head,
                sp,
                pops_edb,
                bool_edb,
                idb_preds,
                |_| IdbSource::New,
                states,
                adom,
                &mut out,
            );
            next.insert(&rule.head.pred, out);
        }
    }
    next
}

fn program_adom<P: Pops>(
    program: &Program<P>,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
) -> Vec<Constant> {
    let mut adom: BTreeSet<Constant> = pops_edb.active_domain();
    adom.extend(bool_edb.active_domain());
    adom.extend(program.constants());
    adom.into_iter().collect()
}

/// Naïve evaluation directly over relations (no grounding). Restricted to
/// naturally ordered semirings; agrees with the grounded backend
/// (cross-checked in tests and property suites).
pub fn relational_naive_eval<P: NaturallyOrdered>(
    program: &Program<P>,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
) -> EvalOutcome<P> {
    let adom = program_adom(program, pops_edb, bool_edb);
    let idb_preds: BTreeSet<String> = program.idb_preds().into_iter().collect();
    let mut current = empty_idbs(program);
    for steps in 0..=cap {
        let next = apply_ico_relational(program, pops_edb, bool_edb, &current, &adom, &idb_preds);
        if next == current {
            return EvalOutcome::from_converged(current, steps);
        }
        current = next;
    }
    EvalOutcome::from_diverged(current, cap)
}

/// Semi-naïve evaluation over relations: the relation-level differential
/// rule of Theorem 6.5 (eq. 64/65). Constant sum-products are covered by
/// the seeding step and skipped thereafter (eq. 65).
pub fn relational_seminaive_eval<P: CompleteDistributiveDioid + NaturallyOrdered>(
    program: &Program<P>,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
) -> EvalOutcome<P> {
    let adom = program_adom(program, pops_edb, bool_edb);
    let idb_preds: BTreeSet<String> = program.idb_preds().into_iter().collect();

    // t = 0: full evaluation from the empty state; δ(0) = F(0) ⊖ 0 = F(0).
    let mut old = empty_idbs(program);
    let mut new = apply_ico_relational(program, pops_edb, bool_edb, &old, &adom, &idb_preds);
    let mut delta = new.clone();

    for steps in 1..=cap {
        if delta.iter().all(|(_, r)| r.is_empty()) {
            return EvalOutcome::from_converged(new, steps);
        }
        let mut contrib = empty_idbs(program);
        {
            let states = IdbStates {
                new: &new,
                old: &old,
                delta: &delta,
            };
            for rule in &program.rules {
                for sp in &rule.body {
                    let n_idb = sp
                        .factors
                        .iter()
                        .filter(|f| idb_preds.contains(&f.atom.pred))
                        .count();
                    // Eq. (65): IDB-free sum-products never change.
                    for k in 0..n_idb {
                        let mut out = contrib
                            .get(&rule.head.pred)
                            .cloned()
                            .expect("pre-seeded head relation");
                        eval_sum_product(
                            &rule.head,
                            sp,
                            pops_edb,
                            bool_edb,
                            &idb_preds,
                            |occ| {
                                use std::cmp::Ordering::*;
                                match occ.cmp(&k) {
                                    Less => IdbSource::New,
                                    Equal => IdbSource::Delta,
                                    Greater => IdbSource::Old,
                                }
                            },
                            states,
                            &adom,
                            &mut out,
                        );
                        contrib.insert(&rule.head.pred, out);
                    }
                }
            }
        }
        // δ' = contrib ⊖ new (pointwise on supports); new' = new ⊕ contrib.
        let mut next_delta = empty_idbs(program);
        let mut next_new = new.clone();
        for (pred, c) in contrib.iter() {
            let cur = next_new.get_or_insert(pred, c.arity());
            let mut d = Relation::new(c.arity());
            for (t, v) in c.support() {
                let existing = cur.get(t);
                let diff = v.minus(&existing);
                if !diff.is_zero() {
                    d.merge(t.clone(), diff);
                    cur.merge(t.clone(), v.clone());
                }
            }
            next_delta.insert(pred, d);
        }
        old = new;
        new = next_new;
        delta = next_delta;
    }
    EvalOutcome::from_diverged(new, cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::naive::naive_eval_sparse;
    use crate::examples_lib as ex;
    use dlo_pops::{Bool, MinNat, Trop};

    fn assert_all_equal<P: NaturallyOrdered + CompleteDistributiveDioid>(
        program: &Program<P>,
        pops: &Database<P>,
        bools: &BoolDatabase,
    ) {
        let grounded = naive_eval_sparse(program, pops, bools, 100_000).unwrap();
        let rel = relational_naive_eval(program, pops, bools, 100_000).unwrap();
        let semi = relational_seminaive_eval(program, pops, bools, 100_000).unwrap();
        for (pred, r) in grounded.iter() {
            let rr = rel
                .get(pred)
                .cloned()
                .unwrap_or_else(|| Relation::new(r.arity()));
            let rs = semi
                .get(pred)
                .cloned()
                .unwrap_or_else(|| Relation::new(r.arity()));
            assert_eq!(r, &rr, "relational naive differs on {pred}");
            assert_eq!(r, &rs, "relational semi-naive differs on {pred}");
        }
        for (pred, r) in rel.iter() {
            if grounded.get(pred).is_none() {
                assert!(r.is_empty(), "extra derivations in {pred}");
            }
        }
    }

    #[test]
    fn sssp_matches_grounded_backend() {
        let (program, edb) = ex::sssp_trop("a");
        assert_all_equal(&program, &edb, &BoolDatabase::new());
    }

    #[test]
    fn apsp_matches_grounded_backend() {
        let (program, edb) = ex::apsp_trop(&[
            ("a", "b", 1.0),
            ("b", "a", 2.0),
            ("b", "c", 3.0),
            ("c", "d", 4.0),
            ("a", "c", 5.0),
        ]);
        assert_all_equal(&program, &edb, &BoolDatabase::new());
    }

    #[test]
    fn quadratic_tc_matches_grounded_backend() {
        let (program, edb) =
            ex::quadratic_tc_bool(&[("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")]);
        assert_all_equal(&program, &edb, &BoolDatabase::new());
        let _ = Bool(true);
    }

    #[test]
    fn condition_guards_and_indicators_work() {
        // The SSSP program uses {1 | X = a}: the equality pre-binding path.
        let program: Program<MinNat> = ex::single_source_program("s");
        let mut edb = Database::new();
        edb.insert(
            "E",
            Relation::from_pairs(
                2,
                vec![
                    (crate::tup!["s", "t"], MinNat::finite(2)),
                    (crate::tup!["t", "u"], MinNat::finite(3)),
                ],
            ),
        );
        assert_all_equal(&program, &edb, &BoolDatabase::new());
        let out = relational_naive_eval(&program, &edb, &BoolDatabase::new(), 1000).unwrap();
        assert_eq!(out.get("L").unwrap().get(&crate::tup!["u"]), MinNat(5));
    }

    #[test]
    fn bool_condition_atoms_bind_through_guards() {
        // BOM-style over MinNat: T(x) :- C(x) ⊕ Σ{T(y) | E(x,y)}.
        let program: Program<MinNat> = ex::bom_program();
        let mut pops = Database::new();
        pops.insert(
            "C",
            Relation::from_pairs(
                1,
                vec![
                    (crate::tup!["c"], MinNat::finite(1)),
                    (crate::tup!["d"], MinNat::finite(10)),
                ],
            ),
        );
        let mut bools = BoolDatabase::new();
        bools.insert(
            "E",
            crate::relation::bool_relation(2, vec![crate::tup!["c", "d"]]),
        );
        assert_all_equal(&program, &pops, &bools);
        let out = relational_naive_eval(&program, &pops, &bools, 1000).unwrap();
        // With ⊕ = min: T(c) = min(C(c), T(d)) = min(1, 10) = 1.
        assert_eq!(out.get("T").unwrap().get(&crate::tup!["c"]), MinNat(1));
    }

    #[test]
    fn wildcard_key_function_args_are_rechecked() {
        use crate::ast::{Atom, Factor, KeyFn, SumProduct, Term};
        // R(X) :- A(X - 1) ⊗ V(X): the A factor unifies before X is
        // bound, so its key-function argument is a wildcard at unify
        // time and must be re-verified once the valuation completes —
        // otherwise every (A-tuple, V-tuple) pair survives.
        let mut p = Program::<Trop>::new();
        p.rule(
            Atom::new("R", vec![Term::v(0)]),
            vec![SumProduct::new(vec![
                Factor::atom(
                    "A",
                    vec![Term::Apply(KeyFn::AddInt(-1), Box::new(Term::v(0)))],
                ),
                Factor::atom("V", vec![Term::v(0)]),
            ])],
        );
        let mut db = Database::new();
        db.insert(
            "A",
            Relation::from_pairs(
                1,
                vec![
                    (crate::tup![0i64], Trop::finite(10.0)),
                    (crate::tup![5i64], Trop::finite(70.0)),
                ],
            ),
        );
        db.insert(
            "V",
            Relation::from_pairs(
                1,
                vec![
                    (crate::tup![1i64], Trop::finite(1.0)),
                    (crate::tup![6i64], Trop::finite(2.0)),
                ],
            ),
        );
        let grounded = naive_eval_sparse(&p, &db, &BoolDatabase::new(), 1000).unwrap();
        let rel = relational_naive_eval(&p, &db, &BoolDatabase::new(), 1000).unwrap();
        let semi = relational_seminaive_eval(&p, &db, &BoolDatabase::new(), 1000).unwrap();
        let r = grounded.get("R").unwrap();
        assert_eq!(r.get(&crate::tup![1i64]), Trop::finite(11.0), "A(0) ⊗ V(1)");
        assert_eq!(r.get(&crate::tup![6i64]), Trop::finite(72.0), "A(5) ⊗ V(6)");
        assert_eq!(r, rel.get("R").unwrap(), "relational naive recheck");
        assert_eq!(r, semi.get("R").unwrap(), "relational semi-naive recheck");
    }

    #[test]
    fn divergence_detected() {
        use crate::ast::{Atom, Factor, SumProduct, Term};
        use dlo_pops::Nat;
        let mut p = Program::<Nat>::new();
        p.rule(
            Atom::new("X", vec![Term::c("u")]),
            vec![
                SumProduct::new(vec![]).with_coeff(Nat(1)),
                SumProduct::new(vec![Factor::atom("X", vec![Term::c("u")])]).with_coeff(Nat(2)),
            ],
        );
        assert!(
            !relational_naive_eval(&p, &Database::new(), &BoolDatabase::new(), 30).is_converged()
        );
        let _ = Trop::INF;
    }
}
