//! Typed evaluation failures and resource governance.
//!
//! Every public evaluation entry point of the execution engine (and the
//! umbrella crate's convenience wrappers) fails **as a value**: a
//! [`EvalError`] instead of a panic — compile rejections, budget and
//! deadline exhaustion, cancellation, contained worker panics, and
//! poisoned materializations all arrive through the same enum, so a
//! long-lived process (the ROADMAP's query server) can absorb a hostile
//! or merely non-convergent query without coming down.
//!
//! Run-phase errors carry the final [`EvalStats`] snapshot the engine
//! had accumulated when the run stopped. The error value itself stays
//! engine-agnostic: a budget-interrupted accumulation is not a
//! fixpoint, so the *typed error* never masquerades as answers.
//! Degraded answers are a separate, explicitly-labelled surface: the
//! engine's `PartialOutput` rides next to the error on the
//! partial-aware entry points, marked per key as settled (exact under
//! the priority strategy's settled-on-pop invariant) or merely a
//! lower bound — callers opt into the prefix, they cannot mistake it
//! for the least fixpoint.
//!
//! Governance inputs live here too: [`EvalBudget`] (deadline, step,
//! emitted-row, and minted-id ceilings, checked at loop checkpoints so
//! the hot per-tuple loops stay untouched), the [`BudgetClass`]
//! presets an admission-control layer hands out, and [`CancelToken`]
//! (a shared atomic flag a server thread can flip mid-run, polled at
//! the same checkpoints).

use super::stats::EvalStats;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which [`EvalBudget`] ceiling a run exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetKind {
    /// [`EvalBudget::max_steps`]: iterations / generations / frontier
    /// batches, whichever the strategy counts.
    Steps,
    /// [`EvalBudget::max_rows`]: rows emitted by rule bodies.
    Rows,
    /// [`EvalBudget::max_minted`]: fresh ids minted by head key
    /// functions.
    MintedIds,
}

impl std::fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BudgetKind::Steps => "steps",
            BudgetKind::Rows => "emitted rows",
            BudgetKind::MintedIds => "minted ids",
        })
    }
}

/// Resource ceilings for one evaluation. The default is unlimited;
/// every limit is independent and checked at phase boundaries
/// (iteration / generation / frontier-batch starts), so a runaway query
/// stops within one phase of crossing a line — never mid-merge.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EvalBudget {
    /// Wall-clock ceiling for the whole run (setup included).
    pub deadline: Option<Duration>,
    /// Ceiling on evaluation steps (iterations, generations, or
    /// frontier batches, depending on the strategy).
    pub max_steps: Option<u64>,
    /// Ceiling on rows emitted by rule bodies (pre-merge).
    pub max_rows: Option<u64>,
    /// Ceiling on fresh constants minted by head key functions.
    pub max_minted: Option<u64>,
}

impl EvalBudget {
    /// No ceilings at all (the default).
    pub fn unlimited() -> EvalBudget {
        EvalBudget::default()
    }

    /// Whether any ceiling is set.
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some()
            || self.max_steps.is_some()
            || self.max_rows.is_some()
            || self.max_minted.is_some()
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> EvalBudget {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the step ceiling.
    pub fn with_max_steps(mut self, steps: u64) -> EvalBudget {
        self.max_steps = Some(steps);
        self
    }

    /// Sets the emitted-row ceiling.
    pub fn with_max_rows(mut self, rows: u64) -> EvalBudget {
        self.max_rows = Some(rows);
        self
    }

    /// Sets the minted-id ceiling.
    pub fn with_max_minted(mut self, minted: u64) -> EvalBudget {
        self.max_minted = Some(minted);
        self
    }
}

/// Named budget presets — the admission-control vocabulary a server
/// front-end hands out per query class, and the ladder the engine's
/// retry loop climbs on [`EvalError::BudgetExhausted`] /
/// [`EvalError::DeadlineExceeded`].
///
/// The presets are deliberately coarse: `Interactive` is sized for a
/// human waiting on a prompt, `Batch` for a report job, `Unbounded`
/// disables governance entirely. Escalation is deterministic:
/// [`BudgetClass::next_up`] walks `Interactive → Batch → Unbounded`
/// and stops.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum BudgetClass {
    /// A human is waiting: sub-second deadline, modest row/step room.
    #[default]
    Interactive,
    /// A job can take a while, but not forever.
    Batch,
    /// No ceilings — governance off.
    Unbounded,
}

impl BudgetClass {
    /// The preset [`EvalBudget`] for this class.
    pub fn budget(self) -> EvalBudget {
        match self {
            BudgetClass::Interactive => EvalBudget::unlimited()
                .with_deadline(Duration::from_millis(500))
                .with_max_steps(1 << 20)
                .with_max_rows(1 << 24)
                .with_max_minted(1 << 20),
            BudgetClass::Batch => EvalBudget::unlimited()
                .with_deadline(Duration::from_secs(60))
                .with_max_steps(1 << 28)
                .with_max_rows(1 << 36)
                .with_max_minted(1 << 28),
            BudgetClass::Unbounded => EvalBudget::unlimited(),
        }
    }

    /// The next class up the escalation ladder, or `None` from
    /// [`BudgetClass::Unbounded`].
    pub fn next_up(self) -> Option<BudgetClass> {
        match self {
            BudgetClass::Interactive => Some(BudgetClass::Batch),
            BudgetClass::Batch => Some(BudgetClass::Unbounded),
            BudgetClass::Unbounded => None,
        }
    }

    /// A stable lowercase tag (logging / report keys).
    pub fn name(self) -> &'static str {
        match self {
            BudgetClass::Interactive => "interactive",
            BudgetClass::Batch => "batch",
            BudgetClass::Unbounded => "unbounded",
        }
    }

    /// The escalation ladder from `self` upward, as budgets:
    /// `Interactive` yields `[interactive, batch, unbounded]`.
    pub fn ladder(self) -> Vec<EvalBudget> {
        let mut out = vec![self.budget()];
        let mut cur = self;
        while let Some(next) = cur.next_up() {
            out.push(next.budget());
            cur = next;
        }
        out
    }
}

impl std::fmt::Display for BudgetClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A shared cancellation flag: clone it, hand one copy to the engine
/// via its options, keep the other, and flip it from any thread.
/// Drivers poll at phase boundaries (the poll is one relaxed atomic
/// load), and a cancelled run returns [`EvalError::Cancelled`] with the
/// stats it had accumulated.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Flips the flag; every evaluation polling this token stops at its
    /// next phase boundary.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A typed evaluation failure. See the module docs for the contract;
/// [`EvalError::stats`] exposes the run-phase telemetry snapshot.
///
/// Equality ignores the carried [`EvalStats`] and measured durations
/// (both are environmental), mirroring
/// [`EvalOutcome`](super::EvalOutcome) equality.
#[derive(Clone, Debug)]
pub enum EvalError {
    /// The program (or query) cannot be compiled or dispatched: an atom
    /// of arity > 32, one head predicate used at two arities, an
    /// unknown or ill-formed query goal, or an edit targeting an
    /// unknown predicate. `detail` names the variant and the offender.
    Compile {
        /// Human-readable rejection, including the compiler's own
        /// error rendering (e.g. `ArityTooLarge`, `HeadArityMismatch`).
        detail: String,
    },
    /// No fixpoint within the iteration cap (Sec. 4.2 cases (i)/(ii)).
    Diverged {
        /// The cap that was hit.
        cap: usize,
        /// An atom sample plus the final step's snapshot — the same
        /// report the legacy `EvalOutcome::unwrap` panic carried.
        diagnostic: String,
        /// Telemetry at the moment the cap was hit.
        stats: Box<EvalStats>,
    },
    /// An [`EvalBudget`] ceiling other than the deadline was crossed.
    BudgetExhausted {
        /// Which ceiling.
        resource: BudgetKind,
        /// The configured limit.
        limit: u64,
        /// The observed value at the failing check.
        used: u64,
        /// Telemetry at the failing check.
        stats: Box<EvalStats>,
    },
    /// The [`EvalBudget::deadline`] passed.
    DeadlineExceeded {
        /// The configured deadline.
        deadline: Duration,
        /// Wall-clock from run start to the failing check.
        elapsed: Duration,
        /// Telemetry at the failing check.
        stats: Box<EvalStats>,
    },
    /// The run's [`CancelToken`] was cancelled.
    Cancelled {
        /// Telemetry at the failing poll.
        stats: Box<EvalStats>,
    },
    /// A worker thread panicked; the panic was contained inside the
    /// pool (it never unwinds across the scope) and the run aborted.
    WorkerPanic {
        /// The panic payload, when it was a string.
        message: String,
        /// Telemetry at the abort.
        stats: Box<EvalStats>,
    },
    /// A `Materialization` edit previously failed mid-flight; the
    /// handle refuses further edits and queries until rebuilt.
    Poisoned {
        /// What poisoned the handle (the original error, rendered).
        reason: String,
    },
}

impl EvalError {
    /// The run-phase telemetry snapshot, for the variants that carry
    /// one (compile rejections and poisoning happen outside a run).
    pub fn stats(&self) -> Option<&EvalStats> {
        match self {
            EvalError::Diverged { stats, .. }
            | EvalError::BudgetExhausted { stats, .. }
            | EvalError::DeadlineExceeded { stats, .. }
            | EvalError::Cancelled { stats }
            | EvalError::WorkerPanic { stats, .. } => Some(stats),
            EvalError::Compile { .. } | EvalError::Poisoned { .. } => None,
        }
    }

    /// A stable short tag per variant (trace events and logs key on
    /// this).
    pub fn kind(&self) -> &'static str {
        match self {
            EvalError::Compile { .. } => "compile",
            EvalError::Diverged { .. } => "diverged",
            EvalError::BudgetExhausted { .. } => "budget",
            EvalError::DeadlineExceeded { .. } => "deadline",
            EvalError::Cancelled { .. } => "cancelled",
            EvalError::WorkerPanic { .. } => "worker_panic",
            EvalError::Poisoned { .. } => "poisoned",
        }
    }

    /// One-line JSON encoding for structured logs, mirroring
    /// [`EvalStats::to_json`](super::stats::EvalStats::to_json) and
    /// using the same in-tree writer: an object tagged by an `"error"`
    /// field (the [`EvalError::kind`] tag) with a rendered `"message"`,
    /// the variant's own fields, and — for run-phase failures — a
    /// compact `"stats"` summary (strategy, steps, emits, governance
    /// counters). Round-trips through `stats::json::parse`.
    pub fn to_json(&self) -> String {
        use super::stats::json;
        let mut w = json::Writer::new();
        w.obj_open();
        w.str_field("error", self.kind());
        w.str_field("message", &self.to_string());
        match self {
            EvalError::Compile { detail } => {
                w.str_field("detail", detail);
            }
            EvalError::Diverged {
                cap, diagnostic, ..
            } => {
                w.u64_field("cap", *cap as u64);
                w.str_field("diagnostic", diagnostic);
            }
            EvalError::BudgetExhausted {
                resource,
                limit,
                used,
                ..
            } => {
                w.str_field("resource", &resource.to_string());
                w.u64_field("limit", *limit);
                w.u64_field("used", *used);
            }
            EvalError::DeadlineExceeded {
                deadline, elapsed, ..
            } => {
                w.u64_field("deadline_ms", deadline.as_millis() as u64);
                w.u64_field("elapsed_ms", elapsed.as_millis() as u64);
            }
            EvalError::Cancelled { .. } => {}
            EvalError::WorkerPanic { message, .. } => {
                w.str_field("panic", message);
            }
            EvalError::Poisoned { reason } => {
                w.str_field("reason", reason);
            }
        }
        if let Some(stats) = self.stats() {
            w.key("stats");
            w.obj_open();
            w.str_field("strategy", &stats.strategy);
            w.u64_field("steps", stats.steps);
            w.u64_field("emits", stats.counters.emits);
            w.u64_field("budget_checks", stats.counters.budget_checks);
            w.u64_field("cancel_polls", stats.counters.cancel_polls);
            w.obj_close();
        }
        w.obj_close();
        w.finish()
    }
}

impl PartialEq for EvalError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (EvalError::Compile { detail: a }, EvalError::Compile { detail: b }) => a == b,
            (EvalError::Diverged { cap: a, .. }, EvalError::Diverged { cap: b, .. }) => a == b,
            (
                EvalError::BudgetExhausted {
                    resource: ra,
                    limit: la,
                    ..
                },
                EvalError::BudgetExhausted {
                    resource: rb,
                    limit: lb,
                    ..
                },
            ) => ra == rb && la == lb,
            (
                EvalError::DeadlineExceeded { deadline: a, .. },
                EvalError::DeadlineExceeded { deadline: b, .. },
            ) => a == b,
            (EvalError::Cancelled { .. }, EvalError::Cancelled { .. }) => true,
            (
                EvalError::WorkerPanic { message: a, .. },
                EvalError::WorkerPanic { message: b, .. },
            ) => a == b,
            (EvalError::Poisoned { reason: a }, EvalError::Poisoned { reason: b }) => a == b,
            _ => false,
        }
    }
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Compile { detail } => {
                write!(f, "compile error: {detail}")
            }
            EvalError::Diverged {
                cap, diagnostic, ..
            } => write!(
                f,
                "datalog° evaluation diverged: no fixpoint within the \
                 iteration cap ({cap}); {diagnostic}"
            ),
            EvalError::BudgetExhausted {
                resource,
                limit,
                used,
                ..
            } => write!(
                f,
                "evaluation budget exhausted: {used} {resource} observed, limit {limit}"
            ),
            EvalError::DeadlineExceeded {
                deadline, elapsed, ..
            } => write!(
                f,
                "evaluation deadline exceeded: {elapsed:?} elapsed, deadline {deadline:?}"
            ),
            EvalError::Cancelled { .. } => write!(f, "evaluation cancelled"),
            EvalError::WorkerPanic { message, .. } => {
                write!(f, "engine worker panicked (contained): {message}")
            }
            EvalError::Poisoned { reason } => write!(
                f,
                "materialization is poisoned by an earlier failed edit \
                 (rebuild() to recover): {reason}"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_flips_shared_state_across_clones() {
        let token = CancelToken::new();
        let peer = token.clone();
        assert!(!peer.is_cancelled());
        token.cancel();
        assert!(peer.is_cancelled());
    }

    #[test]
    fn budget_builder_sets_each_ceiling() {
        let b = EvalBudget::unlimited()
            .with_deadline(Duration::from_millis(5))
            .with_max_steps(7)
            .with_max_rows(11)
            .with_max_minted(13);
        assert!(b.is_limited());
        assert_eq!(b.deadline, Some(Duration::from_millis(5)));
        assert_eq!(b.max_steps, Some(7));
        assert_eq!(b.max_rows, Some(11));
        assert_eq!(b.max_minted, Some(13));
        assert!(!EvalBudget::unlimited().is_limited());
    }

    #[test]
    fn equality_ignores_stats_but_not_limits() {
        let a = EvalError::BudgetExhausted {
            resource: BudgetKind::Steps,
            limit: 3,
            used: 4,
            stats: Box::new(EvalStats {
                steps: 99,
                ..EvalStats::default()
            }),
        };
        let b = EvalError::BudgetExhausted {
            resource: BudgetKind::Steps,
            limit: 3,
            used: 8,
            stats: Box::default(),
        };
        let c = EvalError::BudgetExhausted {
            resource: BudgetKind::Rows,
            limit: 3,
            used: 4,
            stats: Box::default(),
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn budget_classes_escalate_deterministically() {
        assert_eq!(BudgetClass::Interactive.next_up(), Some(BudgetClass::Batch));
        assert_eq!(BudgetClass::Batch.next_up(), Some(BudgetClass::Unbounded));
        assert_eq!(BudgetClass::Unbounded.next_up(), None);
        assert!(BudgetClass::Interactive.budget().is_limited());
        assert!(BudgetClass::Batch.budget().is_limited());
        assert!(!BudgetClass::Unbounded.budget().is_limited());
        // The interactive deadline is tighter than batch.
        assert!(
            BudgetClass::Interactive.budget().deadline.unwrap()
                < BudgetClass::Batch.budget().deadline.unwrap()
        );
        let ladder = BudgetClass::Interactive.ladder();
        assert_eq!(ladder.len(), 3);
        assert_eq!(ladder[0], BudgetClass::Interactive.budget());
        assert_eq!(ladder[2], EvalBudget::unlimited());
        assert_eq!(BudgetClass::Batch.ladder().len(), 2);
        assert_eq!(BudgetClass::Interactive.to_string(), "interactive");
    }

    #[test]
    fn error_json_round_trips_and_tags_the_kind() {
        use super::super::stats::json;
        let e = EvalError::BudgetExhausted {
            resource: BudgetKind::Rows,
            limit: 64,
            used: 91,
            stats: Box::new(EvalStats {
                strategy: "priority".into(),
                steps: 12,
                ..EvalStats::default()
            }),
        };
        let parsed = json::parse(&e.to_json()).expect("valid JSON");
        assert_eq!(parsed.get("error").unwrap().as_str(), Some("budget"));
        assert_eq!(
            parsed.get("resource").unwrap().as_str(),
            Some("emitted rows")
        );
        assert_eq!(parsed.get("limit").unwrap().as_u64(), Some(64));
        assert_eq!(parsed.get("used").unwrap().as_u64(), Some(91));
        let stats = parsed.get("stats").expect("stats summary");
        assert_eq!(stats.get("strategy").unwrap().as_str(), Some("priority"));
        assert_eq!(stats.get("steps").unwrap().as_u64(), Some(12));

        // Variants without a run: no stats object, kind still tagged.
        let p = EvalError::Poisoned {
            reason: "edit failed".into(),
        };
        let parsed = json::parse(&p.to_json()).expect("valid JSON");
        assert_eq!(parsed.get("error").unwrap().as_str(), Some("poisoned"));
        assert!(parsed.get("stats").is_none());
        let msg = parsed.get("message").unwrap().as_str().unwrap();
        assert!(msg.contains("rebuild()"), "got: {msg}");
    }

    #[test]
    fn display_names_the_failure() {
        let e = EvalError::DeadlineExceeded {
            deadline: Duration::from_millis(50),
            elapsed: Duration::from_millis(80),
            stats: Box::default(),
        };
        let text = e.to_string();
        assert!(text.contains("deadline exceeded"), "got: {text}");
        assert_eq!(e.kind(), "deadline");
        assert!(e.stats().is_some());
        let p = EvalError::Poisoned {
            reason: "boom".into(),
        };
        assert!(p.to_string().contains("rebuild()"), "got: {p}");
        assert!(p.stats().is_none());
    }
}
