//! Typed evaluation failures and resource governance.
//!
//! Every public evaluation entry point of the execution engine (and the
//! umbrella crate's convenience wrappers) fails **as a value**: a
//! [`EvalError`] instead of a panic — compile rejections, budget and
//! deadline exhaustion, cancellation, contained worker panics, and
//! poisoned materializations all arrive through the same enum, so a
//! long-lived process (the ROADMAP's query server) can absorb a hostile
//! or merely non-convergent query without coming down.
//!
//! Run-phase errors carry the final [`EvalStats`] snapshot the engine
//! had accumulated when the run stopped — partial output is surfaced
//! **only as a diagnostic** (the stats snapshot and, for divergence,
//! an atom sample): a budget-interrupted accumulation is not a
//! fixpoint, so handing the partial instance back as answers would let
//! callers mistake a prefix of the computation for the least fixpoint.
//!
//! Governance inputs live here too: [`EvalBudget`] (deadline, step,
//! emitted-row, and minted-id ceilings, checked at phase boundaries so
//! the hot per-tuple loops stay untouched) and [`CancelToken`] (a
//! shared atomic flag a server thread can flip mid-run, polled at the
//! same boundaries).

use super::stats::EvalStats;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which [`EvalBudget`] ceiling a run exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetKind {
    /// [`EvalBudget::max_steps`]: iterations / generations / frontier
    /// batches, whichever the strategy counts.
    Steps,
    /// [`EvalBudget::max_rows`]: rows emitted by rule bodies.
    Rows,
    /// [`EvalBudget::max_minted`]: fresh ids minted by head key
    /// functions.
    MintedIds,
}

impl std::fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BudgetKind::Steps => "steps",
            BudgetKind::Rows => "emitted rows",
            BudgetKind::MintedIds => "minted ids",
        })
    }
}

/// Resource ceilings for one evaluation. The default is unlimited;
/// every limit is independent and checked at phase boundaries
/// (iteration / generation / frontier-batch starts), so a runaway query
/// stops within one phase of crossing a line — never mid-merge.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EvalBudget {
    /// Wall-clock ceiling for the whole run (setup included).
    pub deadline: Option<Duration>,
    /// Ceiling on evaluation steps (iterations, generations, or
    /// frontier batches, depending on the strategy).
    pub max_steps: Option<u64>,
    /// Ceiling on rows emitted by rule bodies (pre-merge).
    pub max_rows: Option<u64>,
    /// Ceiling on fresh constants minted by head key functions.
    pub max_minted: Option<u64>,
}

impl EvalBudget {
    /// No ceilings at all (the default).
    pub fn unlimited() -> EvalBudget {
        EvalBudget::default()
    }

    /// Whether any ceiling is set.
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some()
            || self.max_steps.is_some()
            || self.max_rows.is_some()
            || self.max_minted.is_some()
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> EvalBudget {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the step ceiling.
    pub fn with_max_steps(mut self, steps: u64) -> EvalBudget {
        self.max_steps = Some(steps);
        self
    }

    /// Sets the emitted-row ceiling.
    pub fn with_max_rows(mut self, rows: u64) -> EvalBudget {
        self.max_rows = Some(rows);
        self
    }

    /// Sets the minted-id ceiling.
    pub fn with_max_minted(mut self, minted: u64) -> EvalBudget {
        self.max_minted = Some(minted);
        self
    }
}

/// A shared cancellation flag: clone it, hand one copy to the engine
/// via its options, keep the other, and flip it from any thread.
/// Drivers poll at phase boundaries (the poll is one relaxed atomic
/// load), and a cancelled run returns [`EvalError::Cancelled`] with the
/// stats it had accumulated.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Flips the flag; every evaluation polling this token stops at its
    /// next phase boundary.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A typed evaluation failure. See the module docs for the contract;
/// [`EvalError::stats`] exposes the run-phase telemetry snapshot.
///
/// Equality ignores the carried [`EvalStats`] and measured durations
/// (both are environmental), mirroring
/// [`EvalOutcome`](super::EvalOutcome) equality.
#[derive(Clone, Debug)]
pub enum EvalError {
    /// The program (or query) cannot be compiled or dispatched: an atom
    /// of arity > 32, one head predicate used at two arities, an
    /// unknown or ill-formed query goal, or an edit targeting an
    /// unknown predicate. `detail` names the variant and the offender.
    Compile {
        /// Human-readable rejection, including the compiler's own
        /// error rendering (e.g. `ArityTooLarge`, `HeadArityMismatch`).
        detail: String,
    },
    /// No fixpoint within the iteration cap (Sec. 4.2 cases (i)/(ii)).
    Diverged {
        /// The cap that was hit.
        cap: usize,
        /// An atom sample plus the final step's snapshot — the same
        /// report the legacy `EvalOutcome::unwrap` panic carried.
        diagnostic: String,
        /// Telemetry at the moment the cap was hit.
        stats: Box<EvalStats>,
    },
    /// An [`EvalBudget`] ceiling other than the deadline was crossed.
    BudgetExhausted {
        /// Which ceiling.
        resource: BudgetKind,
        /// The configured limit.
        limit: u64,
        /// The observed value at the failing check.
        used: u64,
        /// Telemetry at the failing check.
        stats: Box<EvalStats>,
    },
    /// The [`EvalBudget::deadline`] passed.
    DeadlineExceeded {
        /// The configured deadline.
        deadline: Duration,
        /// Wall-clock from run start to the failing check.
        elapsed: Duration,
        /// Telemetry at the failing check.
        stats: Box<EvalStats>,
    },
    /// The run's [`CancelToken`] was cancelled.
    Cancelled {
        /// Telemetry at the failing poll.
        stats: Box<EvalStats>,
    },
    /// A worker thread panicked; the panic was contained inside the
    /// pool (it never unwinds across the scope) and the run aborted.
    WorkerPanic {
        /// The panic payload, when it was a string.
        message: String,
        /// Telemetry at the abort.
        stats: Box<EvalStats>,
    },
    /// A `Materialization` edit previously failed mid-flight; the
    /// handle refuses further edits and queries until rebuilt.
    Poisoned {
        /// What poisoned the handle (the original error, rendered).
        reason: String,
    },
}

impl EvalError {
    /// The run-phase telemetry snapshot, for the variants that carry
    /// one (compile rejections and poisoning happen outside a run).
    pub fn stats(&self) -> Option<&EvalStats> {
        match self {
            EvalError::Diverged { stats, .. }
            | EvalError::BudgetExhausted { stats, .. }
            | EvalError::DeadlineExceeded { stats, .. }
            | EvalError::Cancelled { stats }
            | EvalError::WorkerPanic { stats, .. } => Some(stats),
            EvalError::Compile { .. } | EvalError::Poisoned { .. } => None,
        }
    }

    /// A stable short tag per variant (trace events and logs key on
    /// this).
    pub fn kind(&self) -> &'static str {
        match self {
            EvalError::Compile { .. } => "compile",
            EvalError::Diverged { .. } => "diverged",
            EvalError::BudgetExhausted { .. } => "budget",
            EvalError::DeadlineExceeded { .. } => "deadline",
            EvalError::Cancelled { .. } => "cancelled",
            EvalError::WorkerPanic { .. } => "worker_panic",
            EvalError::Poisoned { .. } => "poisoned",
        }
    }
}

impl PartialEq for EvalError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (EvalError::Compile { detail: a }, EvalError::Compile { detail: b }) => a == b,
            (EvalError::Diverged { cap: a, .. }, EvalError::Diverged { cap: b, .. }) => a == b,
            (
                EvalError::BudgetExhausted {
                    resource: ra,
                    limit: la,
                    ..
                },
                EvalError::BudgetExhausted {
                    resource: rb,
                    limit: lb,
                    ..
                },
            ) => ra == rb && la == lb,
            (
                EvalError::DeadlineExceeded { deadline: a, .. },
                EvalError::DeadlineExceeded { deadline: b, .. },
            ) => a == b,
            (EvalError::Cancelled { .. }, EvalError::Cancelled { .. }) => true,
            (
                EvalError::WorkerPanic { message: a, .. },
                EvalError::WorkerPanic { message: b, .. },
            ) => a == b,
            (EvalError::Poisoned { reason: a }, EvalError::Poisoned { reason: b }) => a == b,
            _ => false,
        }
    }
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Compile { detail } => {
                write!(f, "compile error: {detail}")
            }
            EvalError::Diverged {
                cap, diagnostic, ..
            } => write!(
                f,
                "datalog° evaluation diverged: no fixpoint within the \
                 iteration cap ({cap}); {diagnostic}"
            ),
            EvalError::BudgetExhausted {
                resource,
                limit,
                used,
                ..
            } => write!(
                f,
                "evaluation budget exhausted: {used} {resource} observed, limit {limit}"
            ),
            EvalError::DeadlineExceeded {
                deadline, elapsed, ..
            } => write!(
                f,
                "evaluation deadline exceeded: {elapsed:?} elapsed, deadline {deadline:?}"
            ),
            EvalError::Cancelled { .. } => write!(f, "evaluation cancelled"),
            EvalError::WorkerPanic { message, .. } => {
                write!(f, "engine worker panicked (contained): {message}")
            }
            EvalError::Poisoned { reason } => write!(
                f,
                "materialization is poisoned by an earlier failed edit \
                 (rebuild() to recover): {reason}"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_flips_shared_state_across_clones() {
        let token = CancelToken::new();
        let peer = token.clone();
        assert!(!peer.is_cancelled());
        token.cancel();
        assert!(peer.is_cancelled());
    }

    #[test]
    fn budget_builder_sets_each_ceiling() {
        let b = EvalBudget::unlimited()
            .with_deadline(Duration::from_millis(5))
            .with_max_steps(7)
            .with_max_rows(11)
            .with_max_minted(13);
        assert!(b.is_limited());
        assert_eq!(b.deadline, Some(Duration::from_millis(5)));
        assert_eq!(b.max_steps, Some(7));
        assert_eq!(b.max_rows, Some(11));
        assert_eq!(b.max_minted, Some(13));
        assert!(!EvalBudget::unlimited().is_limited());
    }

    #[test]
    fn equality_ignores_stats_but_not_limits() {
        let a = EvalError::BudgetExhausted {
            resource: BudgetKind::Steps,
            limit: 3,
            used: 4,
            stats: Box::new(EvalStats {
                steps: 99,
                ..EvalStats::default()
            }),
        };
        let b = EvalError::BudgetExhausted {
            resource: BudgetKind::Steps,
            limit: 3,
            used: 8,
            stats: Box::default(),
        };
        let c = EvalError::BudgetExhausted {
            resource: BudgetKind::Rows,
            limit: 3,
            used: 4,
            stats: Box::default(),
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn display_names_the_failure() {
        let e = EvalError::DeadlineExceeded {
            deadline: Duration::from_millis(50),
            elapsed: Duration::from_millis(80),
            stats: Box::default(),
        };
        let text = e.to_string();
        assert!(text.contains("deadline exceeded"), "got: {text}");
        assert_eq!(e.kind(), "deadline");
        assert!(e.stats().is_some());
        let p = EvalError::Poisoned {
            reason: "boom".into(),
        };
        assert!(p.to_string().contains("rebuild()"), "got: {p}");
        assert!(p.stats().is_none());
    }
}
