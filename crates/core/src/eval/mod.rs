//! Evaluation of grounded datalog° programs: the naïve algorithm
//! (Algorithm 1) and the semi-naïve algorithm (Algorithm 3).
//!
//! Three backends share the [`EvalOutcome`] contract: the grounded
//! evaluators here ([`naive`]/[`seminaive`]), the tuple-at-a-time
//! [`relational`] backend, and the interned execution engine in
//! `dlo_engine`. All three are total over the language — the engine's
//! old "falls back on head key functions" shim is gone; programs whose
//! heads apply key functions (Sec. 4.5) evaluate natively on every
//! backend, and the umbrella crate's default `eval` dispatches straight
//! to the engine. The engine itself offers three evaluation
//! *strategies* (global semi-naïve, FIFO worklist, priority frontier —
//! `dlo_engine::Strategy`), gated by POPS trait bounds; for totally
//! ordered absorptive dioids the umbrella crate's `eval_frontier` runs
//! the Dijkstra-style priority loop.
//!
//! For worklist/priority outcomes, `steps` counts frontier pops or
//! batches rather than ICO applications — fixpoints agree across
//! backends, step counts only within one discipline.

pub mod error;
pub mod naive;
pub mod relational;
pub mod seminaive;
pub mod stats;

use crate::ground::GroundSystem;
use crate::relation::Database;
use dlo_pops::Pops;
pub use error::{BudgetClass, BudgetKind, CancelToken, EvalBudget, EvalError};
pub use stats::{
    Counters, EvalStats, IterStat, JsonlSink, MemorySink, PhaseNanos, RuleProfile, TraceEvent,
    TraceHandle, TraceSink,
};

/// Default iteration cap used by the convenience entry points. High enough
/// for every workload in the repository; all entry points also take an
/// explicit cap.
pub const DEFAULT_CAP: usize = 100_000;

/// The outcome of evaluating a datalog° program.
///
/// Both variants carry [`EvalStats`] — the always-on telemetry every
/// backend populates (the grounded reference evaluators only fill the
/// skeleton fields; the execution engine fills everything). Stats are
/// **excluded from equality**: two outcomes compare equal iff their
/// fixpoints and step counts agree, so cross-backend and cross-thread
/// determinism tests are unaffected by timing noise. Compare
/// [`EvalStats::invariants`] explicitly to test stats determinism.
#[derive(Clone, Debug)]
pub enum EvalOutcome<P: Pops> {
    /// The naïve/semi-naïve loop reached a fixpoint.
    Converged {
        /// The least fixpoint as a database instance.
        output: Database<P>,
        /// Number of ICO applications performed before the fixpoint test
        /// succeeded (the `t` with `J(t+1) = J(t)`).
        steps: usize,
        /// Evaluation telemetry (ignored by `==`).
        stats: EvalStats,
    },
    /// The loop hit its iteration cap (Sec. 4.2 cases (i)/(ii)).
    Diverged {
        /// The last instance computed (for inspection).
        last: Database<P>,
        /// The cap that was hit.
        cap: usize,
        /// Evaluation telemetry (ignored by `==`).
        stats: EvalStats,
    },
}

impl<P: Pops> PartialEq for EvalOutcome<P> {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                EvalOutcome::Converged {
                    output: a,
                    steps: sa,
                    ..
                },
                EvalOutcome::Converged {
                    output: b,
                    steps: sb,
                    ..
                },
            ) => a == b && sa == sb,
            (
                EvalOutcome::Diverged {
                    last: a, cap: ca, ..
                },
                EvalOutcome::Diverged {
                    last: b, cap: cb, ..
                },
            ) => a == b && ca == cb,
            _ => false,
        }
    }
}

impl<P: Pops> Eq for EvalOutcome<P> {}

impl<P: Pops> EvalOutcome<P> {
    /// A converged outcome with default (empty) stats — the
    /// constructor the grounded backends use.
    pub fn from_converged(output: Database<P>, steps: usize) -> Self {
        EvalOutcome::Converged {
            output,
            steps,
            stats: EvalStats::default(),
        }
    }

    /// A diverged outcome with default (empty) stats.
    pub fn from_diverged(last: Database<P>, cap: usize) -> Self {
        EvalOutcome::Diverged {
            last,
            cap,
            stats: EvalStats::default(),
        }
    }

    /// The evaluation telemetry, converged or not.
    pub fn stats(&self) -> &EvalStats {
        match self {
            EvalOutcome::Converged { stats, .. } | EvalOutcome::Diverged { stats, .. } => stats,
        }
    }
    /// The converged output, panicking on divergence.
    ///
    /// The panic message reports the iteration cap that was hit, a
    /// sample of atoms from the last computed instance, and — when the
    /// backend recorded telemetry — the final step's stats snapshot
    /// (last Δ size, frontier queue depth), so a diverging program
    /// (Sec. 4.2 cases (i)/(ii)) is diagnosable without re-running
    /// under a tracer.
    pub fn unwrap(self) -> Database<P> {
        match self.into_result() {
            Ok(output) => output,
            Err(e) => panic!("{e}"),
        }
    }

    /// The converged output, or the typed [`EvalError::Diverged`] the
    /// panic-free entry points report: it carries the same atom-sample
    /// and final-snapshot diagnostic as the [`EvalOutcome::unwrap`]
    /// panic, plus the run's [`EvalStats`].
    pub fn into_result(self) -> Result<Database<P>, EvalError> {
        match self {
            EvalOutcome::Converged { output, .. } => Ok(output),
            EvalOutcome::Diverged { last, cap, stats } => Err(EvalError::Diverged {
                cap,
                diagnostic: divergence_diagnostic(&last, &stats),
                stats: Box::new(stats),
            }),
        }
    }

    /// The converged output and step count, if any.
    pub fn converged(self) -> Option<(Database<P>, usize)> {
        match self {
            EvalOutcome::Converged { output, steps, .. } => Some((output, steps)),
            EvalOutcome::Diverged { .. } => None,
        }
    }

    /// Whether evaluation converged.
    pub fn is_converged(&self) -> bool {
        matches!(self, EvalOutcome::Converged { .. })
    }
}

/// The divergence report shared by [`EvalOutcome::unwrap`] and
/// [`EvalError::Diverged`]: a sample of atoms from the last computed
/// instance and — when the backend recorded telemetry — the final
/// step's stats snapshot (last Δ size, frontier queue depth), which is
/// what distinguishes "still pumping huge deltas" from "cap merely too
/// low".
pub(crate) fn divergence_diagnostic<P: Pops>(last: &Database<P>, stats: &EvalStats) -> String {
    const SAMPLE: usize = 5;
    let mut atoms: Vec<String> = vec![];
    let mut total = 0usize;
    for (pred, rel) in last.iter() {
        for (tuple, v) in rel.support() {
            total += 1;
            if atoms.len() < SAMPLE {
                atoms.push(format!("{pred}{} = {v:?}", crate::value::fmt_tuple(tuple)));
            }
        }
    }
    let sample = if atoms.is_empty() {
        "no supported atoms in the last instance".to_string()
    } else {
        format!(
            "last instance has {total} supported atom(s), e.g. {}",
            atoms.join(", ")
        )
    };
    let snapshot = match stats.last_iter {
        Some(it) => format!(
            "; final step {}: {} delta row(s), queue depth {}, \
             {} emit(s), {} inserted, {} improved",
            it.step, it.delta_rows, it.queue_depth, it.emits, it.inserted, it.improved
        ),
        None => String::new(),
    };
    format!("{sample}{snapshot}")
}

/// A full iteration trace: the sequence of IDB instances
/// `J(0) ⊑ J(1) ⊑ …` (used to regenerate the paper's tables).
#[derive(Clone, Debug)]
pub struct Trace<P: Pops> {
    /// The ground system the trace was produced from.
    pub atoms: Vec<crate::value::GroundAtom>,
    /// `iterates[t]` is the value vector of `J(t)`.
    pub iterates: Vec<Vec<P>>,
    /// Whether the final iterate is a fixpoint.
    pub converged: bool,
}

impl<P: Pops> Trace<P> {
    /// Renders the trace as a fixed-width text table with one column per
    /// ground atom and one row per iteration, like the tables of
    /// Examples 4.1/4.2 and Sec. 7.
    pub fn render(&self) -> String {
        let mut headers: Vec<String> = self.atoms.iter().map(|a| format!("{a}")).collect();
        let mut rows: Vec<Vec<String>> = vec![];
        for (t, x) in self.iterates.iter().enumerate() {
            let mut row = vec![format!("J({t})")];
            row.extend(x.iter().map(|v| format!("{v:?}")));
            rows.push(row);
        }
        headers.insert(0, String::new());
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&headers);
        out.push('\n');
        for row in &rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Shared helper: run a vector-update loop to fixpoint with a cap.
pub(crate) fn to_outcome<P: Pops>(
    sys: &GroundSystem<P>,
    result: Result<(Vec<P>, usize), Vec<P>>,
    cap: usize,
) -> EvalOutcome<P> {
    match result {
        Ok((x, steps)) => EvalOutcome::from_converged(sys.to_database(&x), steps),
        Err(last) => EvalOutcome::from_diverged(sys.to_database(&last), cap),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use crate::tup;
    use dlo_pops::Nat;

    #[test]
    fn diverged_unwrap_reports_cap_and_atom_sample() {
        let mut last = Database::<Nat>::new();
        let mut rel = Relation::new(1);
        rel.set(tup!["u"], Nat(64));
        last.insert("X", rel);
        let outcome = EvalOutcome::from_diverged(last, 30);
        let panic = std::panic::catch_unwind(move || outcome.unwrap())
            .expect_err("diverged unwrap must panic");
        let msg = panic
            .downcast_ref::<String>()
            .expect("panic payload is a formatted string");
        assert!(msg.contains("iteration cap (30)"), "got: {msg}");
        assert!(msg.contains("X(u)"), "got: {msg}");
        assert!(msg.contains("1 supported atom"), "got: {msg}");
    }

    #[test]
    fn diverged_unwrap_includes_final_stats_snapshot() {
        let mut stats = EvalStats::default();
        stats.push_iteration(IterStat {
            step: 29,
            delta_rows: 12,
            queue_depth: 4,
            emits: 80,
            inserted: 3,
            improved: 9,
            ..IterStat::default()
        });
        let outcome = EvalOutcome::Diverged {
            last: Database::<Nat>::new(),
            cap: 30,
            stats,
        };
        let panic = std::panic::catch_unwind(move || outcome.unwrap())
            .expect_err("diverged unwrap must panic");
        let msg = panic.downcast_ref::<String>().unwrap();
        assert!(msg.contains("final step 29"), "got: {msg}");
        assert!(msg.contains("12 delta row(s)"), "got: {msg}");
        assert!(msg.contains("queue depth 4"), "got: {msg}");
    }

    #[test]
    fn diverged_into_result_carries_the_unwrap_diagnostic_and_stats() {
        let mut last = Database::<Nat>::new();
        let mut rel = Relation::new(1);
        rel.set(tup!["u"], Nat(64));
        last.insert("X", rel);
        let mut stats = EvalStats {
            strategy: "seminaive".into(),
            ..EvalStats::default()
        };
        stats.push_iteration(IterStat {
            step: 29,
            delta_rows: 12,
            ..IterStat::default()
        });
        let outcome = EvalOutcome::Diverged {
            last,
            cap: 30,
            stats,
        };
        let err = outcome.into_result().expect_err("diverged must error");
        match &err {
            EvalError::Diverged {
                cap,
                diagnostic,
                stats,
            } => {
                assert_eq!(*cap, 30);
                assert!(diagnostic.contains("X(u)"), "got: {diagnostic}");
                assert!(diagnostic.contains("12 delta row(s)"), "got: {diagnostic}");
                assert_eq!(stats.strategy, "seminaive");
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
        let text = err.to_string();
        assert!(text.contains("iteration cap (30)"), "got: {text}");
    }

    #[test]
    fn diverged_unwrap_mentions_empty_instances() {
        let outcome = EvalOutcome::from_diverged(Database::<Nat>::new(), 7);
        let panic = std::panic::catch_unwind(move || outcome.unwrap())
            .expect_err("diverged unwrap must panic");
        let msg = panic.downcast_ref::<String>().unwrap();
        assert!(msg.contains("no supported atoms"), "got: {msg}");
    }
}
