//! The naïve evaluation algorithm (Algorithm 1).
//!
//! `J(0) ← ⊥`; repeat `J(t+1) ← F(J(t))` until `J(t+1) = J(t)`. On a POPS
//! the chain is guaranteed increasing (the ICO is monotone and starts at
//! `⊥`), and it converges iff the core semiring is stable (Theorem 1.2).

use super::{to_outcome, EvalOutcome, Trace};
use crate::ast::Program;
use crate::ground::{ground, ground_sparse, GroundSystem};
use crate::relation::{BoolDatabase, Database};
use dlo_pops::{NaturallyOrdered, Pops};

/// Runs Algorithm 1 on a pre-grounded system.
pub fn naive_eval_system<P: Pops>(sys: &GroundSystem<P>, cap: usize) -> EvalOutcome<P> {
    let mut x = sys.bottom();
    for steps in 0..=cap {
        let next = sys.apply_ico(&x);
        if next == x {
            return to_outcome(sys, Ok((x, steps)), cap);
        }
        x = next;
    }
    to_outcome(sys, Err(x), cap)
}

/// Runs Algorithm 1 and records every iterate (for the paper's tables).
pub fn naive_eval_trace<P: Pops>(sys: &GroundSystem<P>, cap: usize) -> Trace<P> {
    let mut iterates = vec![sys.bottom()];
    let mut converged = false;
    loop {
        let x = iterates.last().unwrap();
        let next = sys.apply_ico(x);
        if &next == x {
            converged = true;
            break;
        }
        if iterates.len() > cap {
            break;
        }
        iterates.push(next);
    }
    Trace {
        atoms: sys.atoms.clone(),
        iterates,
        converged,
    }
}

/// Grounds (dense) and evaluates a program: the generic entry point, sound
/// for every POPS including non-semirings like the lifted reals.
pub fn naive_eval<P: Pops>(
    program: &Program<P>,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
) -> EvalOutcome<P> {
    let sys = ground(program, pops_edb, bool_edb);
    naive_eval_system(&sys, cap)
}

/// Grounds (sparse) and evaluates a program over a naturally ordered
/// semiring — the scalable path used by the benchmarks.
pub fn naive_eval_sparse<P: NaturallyOrdered>(
    program: &Program<P>,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
) -> EvalOutcome<P> {
    let sys = ground_sparse(program, pops_edb, bool_edb);
    naive_eval_system(&sys, cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples_lib as ex;
    use crate::tup;
    use crate::value::GroundAtom;
    use dlo_pops::{PreSemiring, Trop};

    #[test]
    fn example_4_1_sssp_converges_in_5_steps() {
        let (program, edb) = ex::sssp_trop("a");
        let out = naive_eval(&program, &edb, &BoolDatabase::new(), 100);
        match out {
            EvalOutcome::Converged { output, steps, .. } => {
                // The paper's table shows rows L(0)..L(5) with L(5) = L(4)
                // ("converges after 5 steps"); the stability index per the
                // Sec. 4 definition (least t with J(t) = J(t+1)) is 4.
                assert_eq!(steps, 4);
                let l = output.get("L").unwrap();
                assert_eq!(l.get(&tup!["a"]), Trop::finite(0.0));
                assert_eq!(l.get(&tup!["b"]), Trop::finite(1.0));
                assert_eq!(l.get(&tup!["c"]), Trop::finite(4.0));
                assert_eq!(l.get(&tup!["d"]), Trop::finite(8.0));
            }
            _ => panic!("SSSP must converge"),
        }
    }

    #[test]
    fn example_4_1_trace_matches_paper_table() {
        let (program, edb) = ex::sssp_trop("a");
        let sys = ground(&program, &edb, &BoolDatabase::new());
        let trace = naive_eval_trace(&sys, 100);
        assert!(trace.converged);
        // Row L(2) of the paper: (0, 1, 5, ∞).
        let ix = |name: &str| sys.index[&GroundAtom::new("L", tup![name])];
        let row2 = &trace.iterates[2];
        assert_eq!(row2[ix("a")], Trop::finite(0.0));
        assert_eq!(row2[ix("b")], Trop::finite(1.0));
        assert_eq!(row2[ix("c")], Trop::finite(5.0));
        assert_eq!(row2[ix("d")], Trop::zero());
        // Row L(3): (0, 1, 4, 9).
        let row3 = &trace.iterates[3];
        assert_eq!(row3[ix("c")], Trop::finite(4.0));
        assert_eq!(row3[ix("d")], Trop::finite(9.0));
    }

    #[test]
    fn divergence_is_reported() {
        // x :- 1 + 2x over ℕ (eq. 29).
        use crate::ast::{Atom, Factor, SumProduct, Term};
        use dlo_pops::Nat;
        let mut p = crate::ast::Program::<Nat>::new();
        p.rule(
            Atom::new("X", vec![Term::c("u")]),
            vec![
                SumProduct::new(vec![]).with_coeff(Nat(1)),
                SumProduct::new(vec![Factor::atom("X", vec![Term::c("u")])]).with_coeff(Nat(2)),
            ],
        );
        let out = naive_eval(&p, &Database::new(), &BoolDatabase::new(), 30);
        assert!(!out.is_converged());
    }

    #[test]
    fn trace_render_contains_atoms_and_rows() {
        let (program, edb) = ex::sssp_trop("a");
        let sys = ground(&program, &edb, &BoolDatabase::new());
        let trace = naive_eval_trace(&sys, 100);
        let s = trace.render();
        assert!(s.contains("L(a)"));
        assert!(s.contains("J(0)"));
        assert!(s.contains("J(4)"));
    }
}
