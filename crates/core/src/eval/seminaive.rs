//! Semi-naïve evaluation (Sec. 6, Algorithm 3 + the differential rule of
//! Theorem 6.5).
//!
//! Requires the POPS to be a [`CompleteDistributiveDioid`] (Definition 6.2)
//! so the difference `b ⊖ a` (eq. 58) exists. Per iteration, instead of
//! re-evaluating every polynomial, only the monomials *touched* by a
//! non-zero delta are expanded, each through the prefix-new / delta /
//! suffix-old form of eq. (64):
//!
//! ```text
//! acc_i  = ⊕_{monomials m of f_i} ⊕_{positions k, δ(v_k) ≠ 0}
//!              c ⊗ Π_{j<k} new(v_j) ⊗ δ(v_k) ⊗ Π_{j>k} old(v_j)
//! δ'_i   = acc_i ⊖ J_i                 (eq. 63/64)
//! J'_i   = J_i ⊕ acc_i                 (Algorithm 3 update)
//! ```
//!
//! Idempotence of `⊕` and absorption of `0` make this equal to
//! `F_i(J) ⊖ J_i` (the expansion identity behind Theorem 6.5), and
//! Theorem 6.4 guarantees the final answer equals the naïve one.

use super::{to_outcome, EvalOutcome};
use crate::ast::Program;
use crate::ground::{ground_sparse, GroundSystem};
use crate::relation::{BoolDatabase, Database};
use dlo_pops::{CompleteDistributiveDioid, NaturallyOrdered};

/// Work counters for comparing evaluation strategies (experiment E20).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkStats {
    /// Number of monomial evaluations (naïve) or differential monomial
    /// expansions (semi-naïve) performed.
    pub monomial_evals: u64,
    /// Number of outer iterations.
    pub iterations: u64,
}

/// Incidence index: for each variable, the `(poly, monomial)` pairs whose
/// monomial mentions it.
fn build_incidence<P: dlo_pops::Pops>(sys: &GroundSystem<P>) -> Vec<Vec<(usize, usize)>> {
    let mut inc: Vec<Vec<(usize, usize)>> = vec![vec![]; sys.num_vars()];
    for (i, poly) in sys.polys.iter().enumerate() {
        let Some(poly) = poly else { continue };
        for (j, m) in poly.monomials.iter().enumerate() {
            let mut seen_vars: Vec<usize> = vec![];
            for occ in &m.occs {
                if !seen_vars.contains(&occ.var) {
                    seen_vars.push(occ.var);
                    inc[occ.var].push((i, j));
                }
            }
        }
    }
    inc
}

/// Runs Algorithm 3 on a pre-grounded system, returning the outcome and
/// work statistics.
pub fn seminaive_eval_system<P: CompleteDistributiveDioid>(
    sys: &GroundSystem<P>,
    cap: usize,
) -> (EvalOutcome<P>, WorkStats) {
    let n = sys.num_vars();
    let mut stats = WorkStats::default();
    let incidence = build_incidence(sys);

    // t = 0: full evaluation from ⊥ (= 0 in a dioid).
    let mut old = sys.bottom();
    let mut new = vec![P::zero(); n];
    let mut delta = vec![P::zero(); n];
    let mut dirty: Vec<usize> = vec![];
    for i in 0..n {
        if let Some(poly) = &sys.polys[i] {
            stats.monomial_evals += poly.monomials.len() as u64;
            let v = poly.eval(&old);
            delta[i] = v.minus(&old[i]);
            new[i] = old[i].add(&v);
            if !delta[i].is_zero() {
                dirty.push(i);
            }
        }
    }
    stats.iterations = 1;

    // Persistent scratch buffers keep each iteration's cost proportional
    // to the touched set rather than to N.
    let mut acc: Vec<Option<P>> = vec![None; n];
    let mut touched: Vec<(usize, usize)> = Vec::new();
    for steps in 1..=cap {
        if dirty.is_empty() {
            // δ = 0: J(t+1) = J(t); done.
            return (to_outcome(sys, Ok((new, steps)), cap), stats);
        }
        // Gather the polynomials touched by a dirty variable.
        touched.clear();
        for &v in &dirty {
            touched.extend_from_slice(&incidence[v]);
        }
        touched.sort_unstable();
        touched.dedup();

        for &(i, j) in &touched {
            let poly = sys.polys[i].as_ref().expect("touched poly exists");
            let m = &poly.monomials[j];
            stats.monomial_evals += 1;
            let contrib = m.eval_differential(&new, &old, &delta);
            let slot = acc[i].get_or_insert_with(P::zero);
            *slot = slot.add(&contrib);
        }

        // Advance. `old` differs from `new` exactly on last round's dirty
        // set, so patching those entries makes old = J(t) in O(|dirty|);
        // then only touched heads can change:
        //   new[i] ← new[i] ⊕ a,  δ[i] ← a ⊖ new[i].
        for &v in &dirty {
            old[v] = new[v].clone();
            delta[v] = P::zero();
        }
        dirty.clear();
        let mut last_head = usize::MAX;
        for &(i, _) in &touched {
            if i == last_head {
                continue;
            }
            last_head = i;
            if let Some(a) = acc[i].take() {
                let d = a.minus(&new[i]);
                if !d.is_zero() {
                    delta[i] = d;
                    dirty.push(i);
                    new[i] = new[i].add(&a);
                }
            }
        }
        stats.iterations += 1;
    }
    (to_outcome(sys, Err(new), cap), stats)
}

/// Grounds (sparse) and evaluates with the semi-naïve algorithm. The
/// `NaturallyOrdered` bound justifies sparse grounding; every complete
/// distributive dioid is naturally ordered (Prop. 6.1), so this is the
/// natural pairing.
pub fn seminaive_eval<P: CompleteDistributiveDioid + NaturallyOrdered>(
    program: &Program<P>,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
) -> EvalOutcome<P> {
    let sys = ground_sparse(program, pops_edb, bool_edb);
    seminaive_eval_system(&sys, cap).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::naive::{naive_eval_system, naive_eval_trace};
    use crate::examples_lib as ex;
    use crate::ground::ground_sparse;
    use dlo_pops::Trop;

    #[test]
    fn theorem_6_4_sssp_seminaive_equals_naive() {
        let (program, edb) = ex::sssp_trop("a");
        let bools = BoolDatabase::new();
        let sys = ground_sparse(&program, &edb, &bools);
        let naive = naive_eval_system(&sys, 1000).unwrap();
        let (semi, _) = seminaive_eval_system(&sys, 1000);
        assert_eq!(naive, semi.unwrap());
    }

    #[test]
    fn theorem_6_4_quadratic_tc_equals_naive() {
        // Example 6.6: non-linear transitive closure over 𝔹.
        let (program, edb) =
            ex::quadratic_tc_bool(&[("a", "b"), ("b", "c"), ("c", "d"), ("d", "b")]);
        let bools = BoolDatabase::new();
        let sys = ground_sparse(&program, &edb, &bools);
        let naive = naive_eval_system(&sys, 1000).unwrap();
        let (semi, stats) = seminaive_eval_system(&sys, 1000);
        assert_eq!(naive, semi.unwrap());
        assert!(stats.iterations >= 2);
    }

    #[test]
    fn seminaive_does_less_monomial_work_than_naive() {
        // A longer path so naive repeats discovered work many times.
        let chain: Vec<(String, String)> = (0..30)
            .map(|i| (format!("n{i}"), format!("n{}", i + 1)))
            .collect();
        let pairs: Vec<(&str, &str)> = chain
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        let (program, edb) = ex::sssp_trop_graph("n0", &pairs, |_| 1.0);
        let sys = ground_sparse(&program, &edb, &BoolDatabase::new());
        // Naive work: monomials × iterations.
        let trace = naive_eval_trace(&sys, 1000);
        let naive_work = (sys.num_monomials() * (trace.iterates.len())) as u64;
        let (out, stats) = seminaive_eval_system(&sys, 1000);
        assert!(out.is_converged());
        assert!(
            stats.monomial_evals * 2 < naive_work,
            "semi-naive {} should be well under naive {}",
            stats.monomial_evals,
            naive_work
        );
    }

    #[test]
    fn converges_immediately_on_empty_program() {
        let sys = ground_sparse(
            &crate::ast::Program::<Trop>::new(),
            &Database::new(),
            &BoolDatabase::new(),
        );
        let (out, stats) = seminaive_eval_system(&sys, 10);
        assert!(out.is_converged());
        assert_eq!(stats.iterations, 1);
    }
}
