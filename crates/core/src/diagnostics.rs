//! Runtime diagnostics for datalog° programs.
//!
//! The least-fixpoint semantics rests on two semantic preconditions the
//! type system cannot see: the ICO must be *monotone* (user-supplied
//! [`crate::ast::UnaryFn`]s can break this) and the Kleene chain must be
//! ascending. These checkers verify both on concrete runs, turning silent
//! wrong answers into loud failures — used by the test suites and
//! available to library users debugging custom POPS or value functions.

use crate::eval::Trace;
use crate::ground::GroundSystem;
use dlo_pops::Pops;

/// A diagnostic finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Human-readable description.
    pub what: String,
}

/// Checks that a recorded trace is an ascending chain
/// `J(0) ⊑ J(1) ⊑ …` (Sec. 3: guaranteed when the ICO is monotone and the
/// start is `⊥`). Returns one finding per violation.
pub fn check_ascending_chain<P: Pops>(trace: &Trace<P>) -> Vec<Finding> {
    let mut out = vec![];
    for (t, w) in trace.iterates.windows(2).enumerate() {
        for (i, (a, b)) in w[0].iter().zip(&w[1]).enumerate() {
            if !a.leq(b) {
                out.push(Finding {
                    what: format!(
                        "chain violation at step {t}→{}: {:?} ⋢ {:?} ({})",
                        t + 1,
                        a,
                        b,
                        trace.atoms[i]
                    ),
                });
            }
        }
    }
    out
}

/// Spot-checks monotonicity of the grounded ICO: for each sampled pair of
/// comparable inputs `x ⊑ y`, verifies `F(x) ⊑ F(y)`. The sample is the
/// Kleene chain itself plus `⊥`/pointwise joins along it — cheap and
/// catches non-monotone interpreted functions in practice.
pub fn check_ico_monotone_on_chain<P: Pops>(
    sys: &GroundSystem<P>,
    trace: &Trace<P>,
) -> Vec<Finding> {
    let mut out = vec![];
    let leq_vec = |a: &[P], b: &[P]| a.iter().zip(b).all(|(x, y)| x.leq(y));
    for (t, x) in trace.iterates.iter().enumerate() {
        for (u, y) in trace.iterates.iter().enumerate().skip(t) {
            if leq_vec(x, y) {
                let fx = sys.apply_ico(x);
                let fy = sys.apply_ico(y);
                if !leq_vec(&fx, &fy) {
                    out.push(Finding {
                        what: format!("ICO not monotone between iterates {t} and {u}"),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Factor, Program, SumProduct, Term, UnaryFn};
    use crate::eval::naive::naive_eval_trace;
    use crate::examples_lib as ex;
    use crate::ground;
    use crate::relation::{BoolDatabase, Database};
    use dlo_pops::Trop;

    #[test]
    fn sssp_chain_is_clean() {
        let (prog, edb) = ex::sssp_trop("a");
        let sys = ground(&prog, &edb, &BoolDatabase::new());
        let trace = naive_eval_trace(&sys, 100);
        assert!(check_ascending_chain(&trace).is_empty());
        assert!(check_ico_monotone_on_chain(&sys, &trace).is_empty());
    }

    #[test]
    fn win_move_three_chain_is_clean() {
        // `not` is monotone in the knowledge order — the chain must ascend.
        let (prog, bools) = ex::win_move_three(&ex::fig4_edges());
        let sys = ground(&prog, &Database::new(), &bools);
        let trace = naive_eval_trace(&sys, 100);
        assert!(trace.converged);
        assert!(check_ascending_chain(&trace).is_empty());
    }

    #[test]
    fn non_monotone_function_is_caught() {
        // A deliberately non-monotone "negation" in the TRUTH order of
        // Trop (flips small/large): the checker must flag the chain.
        let bad = UnaryFn::new("bad_flip", |x: &Trop| {
            if x.is_finite() {
                Trop::INF
            } else {
                Trop::finite(0.0)
            }
        });
        let mut p = Program::<Trop>::new();
        p.rule(
            Atom::new("X", vec![Term::c("u")]),
            vec![SumProduct::new(vec![Factor::wrapped(
                "X",
                vec![Term::c("u")],
                bad,
            )])],
        );
        let sys = ground(&p, &Database::new(), &BoolDatabase::new());
        let trace = naive_eval_trace(&sys, 10);
        // X oscillates: ∞ → 0 → ∞ → … The chain check must complain (or
        // the run must fail to converge and the monotone check trip).
        let findings = check_ascending_chain(&trace);
        let findings2 = check_ico_monotone_on_chain(&sys, &trace);
        assert!(
            !findings.is_empty() || !findings2.is_empty() || !trace.converged,
            "non-monotone ICO slipped through"
        );
    }
}
