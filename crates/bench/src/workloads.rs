//! Seeded synthetic workload generators (graphs and programs).
//!
//! The paper reports no machine experiments, so the performance claims
//! (semi-naïve beats naïve; `LinearLFP`/FWK beat iteration on p-stable
//! semirings; 0-stable ⇒ ≤ N steps) are exercised on synthetic inputs:
//! Erdős–Rényi-style random digraphs, grids, paths, and cycles — all
//! generated from explicit seeds for byte-identical reruns.

use dlo_core::relation::{bool_relation, Database, Relation};
use dlo_core::value::{Constant, Tuple};
use dlo_pops::Trop;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated directed graph with integer node ids.
#[derive(Clone, Debug)]
pub struct GraphInstance {
    /// Node count.
    pub n: usize,
    /// Directed edges with weights.
    pub edges: Vec<(usize, usize, f64)>,
}

impl GraphInstance {
    /// A random digraph with `m` distinct non-loop edges, weights in
    /// `1..=max_w`.
    pub fn random(n: usize, m: usize, max_w: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = vec![];
        let mut seen = std::collections::BTreeSet::new();
        while edges.len() < m {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v || !seen.insert((u, v)) {
                continue;
            }
            let w = rng.gen_range(1..=max_w) as f64;
            edges.push((u, v, w));
        }
        GraphInstance { n, edges }
    }

    /// A directed path `0 → 1 → … → n-1` with unit weights.
    pub fn path(n: usize) -> Self {
        GraphInstance {
            n,
            edges: (0..n - 1).map(|i| (i, i + 1, 1.0)).collect(),
        }
    }

    /// A directed cycle with unit weights.
    pub fn cycle(n: usize) -> Self {
        GraphInstance {
            n,
            edges: (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect(),
        }
    }

    /// The **gradient** graph: the classic Bellman-Ford worst case for
    /// synchronous (round-based) shortest-path relaxation. A unit-weight
    /// chain `0 → 1 → … → n-1` plus direct edges `0 → i` of weight `3i`.
    ///
    /// From source 0 the true distance to `i` is `i` (the pure chain),
    /// but at round `t < i` the best ≤`t`-edge path is "jump to
    /// `i - t + 1`, walk the chain": cost `3i - 2t + 2`. So **every**
    /// node `i` strictly improves at **every** round `t ≤ i` — Θ(n²)
    /// value updates for a global semi-naïve loop — while a best-first
    /// frontier (Dijkstra) settles each node exactly once: Θ(n) work.
    /// This is the separation workload for `dlo_engine`'s priority
    /// strategy; the chain/random TC instances bound the constant-factor
    /// regime where derivation counts are strategy-invariant.
    pub fn gradient(n: usize) -> Self {
        assert!(n >= 2, "gradient graph needs at least a source and a sink");
        let mut edges: Vec<(usize, usize, f64)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        edges.extend((1..n).map(|i| (0, i, 3.0 * i as f64)));
        GraphInstance { n, edges }
    }

    /// A `k × k` grid with edges right and down, unit weights.
    pub fn grid(k: usize) -> Self {
        let idx = |r: usize, c: usize| r * k + c;
        let mut edges = vec![];
        for r in 0..k {
            for c in 0..k {
                if c + 1 < k {
                    edges.push((idx(r, c), idx(r, c + 1), 1.0));
                }
                if r + 1 < k {
                    edges.push((idx(r, c), idx(r + 1, c), 1.0));
                }
            }
        }
        GraphInstance { n: k * k, edges }
    }

    /// Node name for id `i`.
    pub fn node(&self, i: usize) -> Constant {
        Constant::Int(i as i64)
    }

    /// The edge relation as a `Trop⁺` EDB named `E`.
    pub fn trop_edb(&self) -> Database<Trop> {
        let mut db = Database::new();
        db.insert(
            "E",
            Relation::from_pairs(
                2,
                self.edges
                    .iter()
                    .map(|&(u, v, w)| (vec![self.node(u), self.node(v)] as Tuple, Trop::finite(w))),
            ),
        );
        db
    }

    /// The edge relation as a Boolean EDB named `E` (as a POPS database,
    /// for programs whose `E` is a factor).
    pub fn bool_edb(&self) -> Database<dlo_pops::Bool> {
        let mut db = Database::new();
        db.insert(
            "E",
            bool_relation(
                2,
                self.edges
                    .iter()
                    .map(|&(u, v, _)| vec![self.node(u), self.node(v)] as Tuple),
            ),
        );
        db
    }

    /// The single-source shortest-path program over `Trop⁺` from node 0,
    /// paired with this graph's EDB.
    pub fn sssp(&self) -> (dlo_core::Program<Trop>, Database<Trop>) {
        (single_source_int_program(0), self.trop_edb())
    }
}

/// The `keyed_heads` workload: hop-indexed shortest paths, the canonical
/// head-key-function recursion (Sec. 4.5 key functions, computed in the
/// **head**):
///
/// ```text
/// H(x, 0)     :- S(x).
/// H(y, i + 1) :- ⊕_x ( H(x, i) ⊗ E(x, y) ) | i < k.
/// ```
///
/// `H(y, i)` is the best cost of reaching `y` in exactly `i` hops. Every
/// iteration derives rows under a key (`i + 1`) that no EDB tuple
/// mentions — the path that used to throw the engine back onto the
/// relational backend and now exercises its dynamic interner instead.
pub fn hop_indexed_program<P: dlo_pops::Pops>(k: i64) -> dlo_core::Program<P> {
    use dlo_core::ast::{Atom, Factor, KeyFn, Program, SumProduct, Term};
    use dlo_core::formula::{CmpOp, Formula};
    let mut p = Program::new();
    p.rule(
        Atom::new("H", vec![Term::v(0), Term::c(0)]),
        vec![SumProduct::new(vec![Factor::atom("S", vec![Term::v(0)])])],
    );
    p.rule(
        Atom::new(
            "H",
            vec![
                Term::v(1),
                Term::Apply(KeyFn::AddInt(1), Box::new(Term::v(2))),
            ],
        ),
        vec![SumProduct::new(vec![
            Factor::atom("H", vec![Term::v(0), Term::v(2)]),
            Factor::atom("E", vec![Term::v(0), Term::v(1)]),
        ])
        .with_condition(Formula::cmp(Term::v(2), CmpOp::Lt, Term::c(k)))],
    );
    p
}

impl GraphInstance {
    /// The `keyed_heads` workload over this graph: [`hop_indexed_program`]
    /// with hop budget `k` and source node 0, paired with the `Trop⁺` EDB
    /// (`E` plus the unit source relation `S`).
    pub fn hops(&self, k: i64) -> (dlo_core::Program<Trop>, Database<Trop>) {
        let mut edb = self.trop_edb();
        edb.insert(
            "S",
            Relation::from_pairs(1, vec![(vec![self.node(0)] as Tuple, Trop::finite(0.0))]),
        );
        (hop_indexed_program(k), edb)
    }
}

/// `single_source_program` with an integer source (generator graphs use
/// integer node ids).
pub fn single_source_int_program<P: dlo_pops::Pops>(source: i64) -> dlo_core::Program<P> {
    use dlo_core::ast::{Atom, Factor, Program, SumProduct, Term};
    use dlo_core::formula::{CmpOp, Formula};
    let mut p = Program::new();
    p.rule(
        Atom::new("L", vec![Term::v(0)]),
        vec![
            SumProduct::new(vec![]).with_condition(Formula::cmp(
                Term::v(0),
                CmpOp::Eq,
                Term::c(source),
            )),
            SumProduct::new(vec![
                Factor::atom("L", vec![Term::v(1)]),
                Factor::atom("E", vec![Term::v(1), Term::v(0)]),
            ]),
        ],
    );
    p
}

/// A Dijkstra oracle for SSSP ground truth on generated graphs.
pub fn dijkstra(g: &GraphInstance, source: usize) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; g.n];
    let mut adj: Vec<Vec<(usize, f64)>> = vec![vec![]; g.n];
    for &(u, v, w) in &g.edges {
        adj[u].push((v, w));
    }
    dist[source] = 0.0;
    let mut heap = std::collections::BinaryHeap::new();
    heap.push((std::cmp::Reverse(ordered(0.0)), source));
    while let Some((std::cmp::Reverse(d), u)) = heap.pop() {
        let d = d.0;
        if d > dist[u] {
            continue;
        }
        for &(v, w) in &adj[u] {
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                heap.push((std::cmp::Reverse(ordered(nd)), v));
            }
        }
    }
    dist
}

/// Orderable f64 wrapper for the heap (weights are never NaN).
#[derive(PartialEq, PartialOrd)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("no NaN weights")
    }
}
fn ordered(x: f64) -> OrdF64 {
    OrdF64(x)
}

/// The **bill-of-material forest**: `trees` independent complete
/// `fanout`-ary subpart trees of the given `depth`, as the Example 4.2
/// program's inputs — Boolean subpart edges `E` (parent → child) and a
/// unit cost relation `C` over every part (leaves cost extra so totals
/// differ per subtree). A *point* query `?- T(root_i).` demands exactly
/// one tree, so goal-directed evaluation does `1/trees` of the full
/// fixpoint's work — the `magic_sets` bench's BOM leg.
pub fn bom_forest(
    trees: usize,
    depth: usize,
    fanout: usize,
) -> (
    dlo_core::Program<dlo_pops::MinNat>,
    Database<dlo_pops::MinNat>,
    dlo_core::BoolDatabase,
) {
    use dlo_core::examples_lib::bom_program;
    use dlo_pops::MinNat;
    let mut edges: Vec<Tuple> = vec![];
    let mut costs: Vec<(Tuple, MinNat)> = vec![];
    let part = |t: usize, i: usize| Constant::Int((t * 1_000_000 + i) as i64);
    for t in 0..trees {
        // Heap-indexed complete tree: node i has children i*fanout+1+k.
        let nodes: usize = (0..=depth).map(|d| fanout.pow(d as u32)).sum();
        for i in 0..nodes {
            for kchild in 0..fanout {
                let c = i * fanout + 1 + kchild;
                if c < nodes {
                    edges.push(vec![part(t, i), part(t, c)]);
                }
            }
            let leaf = i * fanout + 1 >= nodes;
            costs.push((
                vec![part(t, i)],
                MinNat::finite(if leaf { 1 + (i % 7) as u64 } else { 1 }),
            ));
        }
    }
    let mut pops = Database::new();
    pops.insert("C", Relation::from_pairs(1, costs));
    let mut bools = dlo_core::BoolDatabase::new();
    bools.insert("E", bool_relation(2, edges));
    (bom_program(), pops, bools)
}

/// The root part name of `bom_forest` tree `t` (query target).
pub fn bom_forest_root(t: usize) -> Constant {
    Constant::Int((t * 1_000_000) as i64)
}

/// The arity-4 **wide fact lookup** workload: a large random fact
/// table `F(A, B, C, D)` probed by two rules through two wide masks —
///
/// ```text
/// Out1(A, D) :- S(A, B, C)     * F(A, B, C, D).   // probe {A, B, C}
/// Out2(A)    :- S4(A, B, C, D) * F(A, B, C, D).   // probe {A, B, C, D}
/// ```
///
/// Both probe keys are ≥ 3 columns (past the packed-`u64` hash fast
/// path), and the two masks share a prefix order: one sorted
/// arrangement of `F` serves both, where the hash path must build two
/// boxed-wide-key indexes over the full table. `S` holds `probes`
/// known-present `(A, B, C)` triples and `S4` a sample of full rows, so
/// evaluation is a handful of probes against a build-dominated index —
/// the regime where arrangement construction cost decides wall-clock.
pub fn wide_lookup(
    rows: usize,
    probes: usize,
    seed: u64,
) -> (dlo_core::Program<Trop>, Database<Trop>) {
    use dlo_core::ast::{Atom, Factor, Program, SumProduct, Term};
    let mut p = Program::new();
    p.rule(
        Atom::new("Out1", vec![Term::v(0), Term::v(3)]),
        vec![SumProduct::new(vec![
            Factor::atom("S", vec![Term::v(0), Term::v(1), Term::v(2)]),
            Factor::atom("F", vec![Term::v(0), Term::v(1), Term::v(2), Term::v(3)]),
        ])],
    );
    p.rule(
        Atom::new("Out2", vec![Term::v(0)]),
        vec![SumProduct::new(vec![
            Factor::atom("S4", vec![Term::v(0), Term::v(1), Term::v(2), Term::v(3)]),
            Factor::atom("F", vec![Term::v(0), Term::v(1), Term::v(2), Term::v(3)]),
        ])],
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::BTreeSet::new();
    let mut facts: Vec<(Tuple, Trop)> = Vec::with_capacity(rows);
    let domain = (rows as f64).cbrt() as i64 * 2 + 2;
    while facts.len() < rows {
        let (a, b, c) = (
            rng.gen_range(0..domain),
            rng.gen_range(0..domain),
            rng.gen_range(0..domain),
        );
        if !seen.insert((a, b, c)) {
            continue;
        }
        let d = rng.gen_range(0..domain);
        facts.push((
            vec![
                Constant::Int(a),
                Constant::Int(b),
                Constant::Int(c),
                Constant::Int(d),
            ],
            Trop::finite(rng.gen_range(1..=9) as f64),
        ));
    }
    let s_rows: Vec<(Tuple, Trop)> = facts
        .iter()
        .take(probes)
        .map(|(t, _)| (t[..3].to_vec(), Trop::finite(1.0)))
        .collect();
    let s4_rows: Vec<(Tuple, Trop)> = facts
        .iter()
        .step_by((rows / probes).max(1))
        .take(probes)
        .map(|(t, _)| (t.clone(), Trop::finite(1.0)))
        .collect();
    let mut db = Database::new();
    db.insert("F", Relation::from_pairs(4, facts));
    db.insert("S", Relation::from_pairs(3, s_rows));
    db.insert("S4", Relation::from_pairs(4, s4_rows));
    (p, db)
}

/// The arity-4 **labeled closure** workload: edges carry a two-column
/// label `(class, tier)`, and paths compose only within one label —
///
/// ```text
/// R(X, Y, A, B) :- E4(X, Y, A, B) + R(X, Z, A, B) * E4(Z, Y, A, B).
/// ```
///
/// so the fixpoint is a per-label transitive closure. The probed
/// relation (`E4`) has arity 4 and the recursive join's probe covers
/// three columns `(Z, A, B)` — past the packed-`u64` fast path of the
/// hash-prefix indexes (≥ 3 key columns fall back to boxed wide keys),
/// which is exactly the regime the sorted arrangements exist for. The
/// instance is `classes²` disjoint unit chains of `chain` nodes, one
/// per label pair, with node ids disjoint across labels.
pub fn labeled_tc4(classes: usize, chain: usize) -> (dlo_core::Program<Trop>, Database<Trop>) {
    use dlo_core::ast::{Atom, Factor, Program, SumProduct, Term};
    let mut p = Program::new();
    p.rule(
        Atom::new("R", vec![Term::v(0), Term::v(1), Term::v(2), Term::v(3)]),
        vec![
            SumProduct::new(vec![Factor::atom(
                "E4",
                vec![Term::v(0), Term::v(1), Term::v(2), Term::v(3)],
            )]),
            SumProduct::new(vec![
                Factor::atom("R", vec![Term::v(0), Term::v(4), Term::v(2), Term::v(3)]),
                Factor::atom("E4", vec![Term::v(4), Term::v(1), Term::v(2), Term::v(3)]),
            ]),
        ],
    );
    let mut rows: Vec<(Tuple, Trop)> = vec![];
    let mut id = 0i64;
    for a in 0..classes {
        for b in 0..classes {
            let base = id;
            id += chain as i64;
            for i in 0..chain as i64 - 1 {
                rows.push((
                    vec![
                        Constant::Int(base + i),
                        Constant::Int(base + i + 1),
                        Constant::Int(a as i64),
                        Constant::Int(b as i64),
                    ],
                    Trop::finite(1.0),
                ));
            }
        }
    }
    let mut db = Database::new();
    db.insert("E4", Relation::from_pairs(4, rows));
    (p, db)
}

/// Prints the host line every bench emits — `nproc`, the thread knob,
/// and (on one core) the multi-core caveat the committed `BENCH_*.json`
/// baselines carry in their metadata: parallel legs on a single-core
/// container measure scheduling overhead, never wall-clock speedup.
pub fn print_host_note() {
    let (nproc, knob) = host_metadata();
    println!("== host: nproc={nproc}, DLO_ENGINE_THREADS={knob}");
    if nproc == 1 {
        println!("!! single-core container: parallel numbers measure overhead, not speedup");
    }
    println!();
}

/// The host metadata benches embed in recorded baselines (mirrors
/// [`print_host_note`] as data: `nproc` plus the raw thread knob).
pub fn host_metadata() -> (usize, String) {
    let nproc = std::thread::available_parallelism().map_or(1, |n| n.get());
    let knob = std::env::var("DLO_ENGINE_THREADS").unwrap_or_else(|_| "unset".to_string());
    (nproc, knob)
}

/// Prints a two-column table with a caption (the repro binaries' shared
/// output format).
pub fn print_table(caption: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("== {caption}");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let fmt = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt(&hdr));
    for row in rows {
        println!("{}", fmt(row));
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_graph_has_requested_shape() {
        let g = GraphInstance::random(10, 25, 5, 42);
        assert_eq!(g.n, 10);
        assert_eq!(g.edges.len(), 25);
        assert!(g.edges.iter().all(|&(u, v, w)| u != v && w >= 1.0));
        // Determinism.
        let g2 = GraphInstance::random(10, 25, 5, 42);
        assert_eq!(g.edges, g2.edges);
    }

    #[test]
    fn grid_and_path_shapes() {
        let p = GraphInstance::path(5);
        assert_eq!(p.edges.len(), 4);
        let g = GraphInstance::grid(3);
        assert_eq!(g.n, 9);
        assert_eq!(g.edges.len(), 12);
    }

    #[test]
    fn dijkstra_on_path() {
        let g = GraphInstance::path(4);
        assert_eq!(dijkstra(&g, 0), vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn hop_indexed_workload_agrees_across_backends() {
        let g = GraphInstance::random(10, 30, 5, 9);
        let (prog, edb) = g.hops(4);
        let bools = dlo_core::BoolDatabase::new();
        let rel = dlo_core::relational_seminaive_eval(&prog, &edb, &bools, 10_000).unwrap();
        let eng = dlo_engine::engine_seminaive_eval(&prog, &edb, &bools, 10_000)
            .expect("compiles")
            .unwrap();
        assert_eq!(rel, eng, "head-keyed hops: engine vs relational");
        // Exactly-one-hop rows exist and carry edge costs.
        let h = eng.get("H").unwrap();
        assert!(h.support_size() > 1, "hops were derived");
    }

    #[test]
    fn engine_matches_dijkstra_on_random_graphs() {
        for seed in [1u64, 2, 3] {
            let g = GraphInstance::random(12, 30, 9, seed);
            let (prog, edb) = g.sssp();
            let out =
                dlo_core::naive_eval_sparse(&prog, &edb, &dlo_core::BoolDatabase::new(), 10_000)
                    .unwrap();
            let oracle = dijkstra(&g, 0);
            let l = out.get("L");
            for (i, d) in oracle.iter().enumerate() {
                let got = l
                    .map(|r| r.get(&vec![g.node(i)]))
                    .unwrap_or(Trop::INF)
                    .get();
                assert_eq!(got, *d, "node {i} seed {seed}");
            }
        }
    }
}
