//! # dlo-bench — reproduction harness and workloads
//!
//! Shared infrastructure for the `repro_*` binaries (one per table/figure
//! of the paper — see DESIGN.md's experiment index and EXPERIMENTS.md for
//! recorded outputs) and for the Criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod workloads;

pub use workloads::*;
