//! Strategy comparison on iteration-bound workloads: semi-naïve global
//! iterations vs FIFO generation worklist vs bucketed priority frontier
//! (`dlo_engine::worklist`), with wall-clock timings and step counts.
//!
//! Three regimes:
//!
//! * `chain_1k` / `random_1k` — 1k-node transitive closure, where every
//!   strategy performs the same derivations (unique shortest paths) and
//!   the frontier wins constant factors only;
//! * `gradient_2k` — the Bellman-Ford worst case
//!   ([`GraphInstance::gradient`]): Θ(n²) updates for round-based
//!   semi-naïve vs Θ(n) settled pops for the frontier (Cor. 5.19 —
//!   absorptive dioids settle facts best-first), an asymptotic
//!   separation.
//!
//! Runs through the **decode-free** [`dlo_engine::engine_eval_interned`]
//! entry point: the `eval_ms` column is the pure fixpoint time and
//! `decode_ms` is the deferred rank-sorted `Database` materialization —
//! the phase a pipeline feeding results back into the engine never pays.
//! Support counts and the cross-strategy agreement check come straight
//! off the interned handles.

use dlo_bench::{print_host_note, print_table, GraphInstance};
use dlo_core::examples_lib::apsp_program;
use dlo_core::{BoolDatabase, Program};
use dlo_engine::{engine_eval_interned, EngineOpts, EvalStats, InternedOutcome, Strategy};
use dlo_pops::Trop;

fn ms(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1e6)
}

fn main() {
    print_host_note();
    let bools = BoolDatabase::new();
    let opts = EngineOpts::default();
    let mut rows = vec![];
    let chain = GraphInstance::path(1000);
    let random = GraphInstance::random(1000, 1500, 9, 7);
    let (grad_prog, grad_edb) = GraphInstance::gradient(2000).sssp();
    let cases: Vec<(&str, &str, Program<Trop>, _)> = vec![
        ("chain_1k", "T", apsp_program::<Trop>(), chain.trop_edb()),
        ("random_1k", "T", apsp_program::<Trop>(), random.trop_edb()),
        ("gradient_2k", "L", grad_prog, grad_edb),
    ];
    for (name, out_pred, prog, edb) in &cases {
        let mut stats: Vec<(EvalStats, usize, usize)> = vec![];
        let mut dbs = vec![];
        for strategy in [Strategy::SemiNaive, Strategy::Worklist, Strategy::Priority] {
            let out = engine_eval_interned(prog, edb, &bools, 100_000_000, strategy, &opts)
                .expect("compiles");
            assert!(
                matches!(out, InternedOutcome::Converged { .. }),
                "workloads converge"
            );
            // Support size is free on the interned handle — no decode.
            let support = out.output().support_size(out_pred);
            // `materialize` times the deferred decode into the stats.
            let decoded = out.materialize();
            let s = decoded.stats().clone();
            let steps = s.steps as usize;
            stats.push((s, steps, support));
            dbs.push(decoded.unwrap());
        }
        assert_eq!(dbs[0], dbs[1], "{name}: worklist fixpoint differs");
        assert_eq!(dbs[0], dbs[2], "{name}: priority fixpoint differs");
        for (si, sname) in ["seminaive", "worklist", "priority"].iter().enumerate() {
            let (s, steps, support) = &stats[si];
            rows.push(vec![
                name.to_string(),
                sname.to_string(),
                ms(s.phases.setup),
                ms(s.phases.edb_index),
                ms(s.phases.eval),
                ms(s.phases.decode),
                format!("{steps}"),
                format!("{support}"),
                format!("{}", s.counters.emits + s.counters.fresh_emits),
                format!(
                    "{}",
                    s.counters.rows_inserted
                        + s.counters.rows_improved
                        + s.counters.merges_absorbed
                ),
            ]);
        }
    }
    print_table(
        "engine strategies over Trop (per-phase ms from EvalStats; steps: iterations / generations / batches)",
        &[
            "instance", "strategy", "setup_ms", "index_ms", "eval_ms", "decode_ms", "steps",
            "support", "emits", "merges",
        ],
        &rows,
    );
}
