//! Strategy comparison on iteration-bound workloads: semi-naïve global
//! iterations vs FIFO worklist vs bucketed priority frontier
//! (`dlo_engine::worklist`), with wall-clock timings and step counts.
//!
//! Three regimes:
//!
//! * `chain_1k` / `random_1k` — 1k-node transitive closure, where every
//!   strategy performs the same derivations (unique shortest paths) and
//!   the frontier wins constant factors only;
//! * `gradient_2k` — the Bellman-Ford worst case
//!   ([`GraphInstance::gradient`]): Θ(n²) updates for round-based
//!   semi-naïve vs Θ(n) settled pops for the frontier (Cor. 5.19 —
//!   absorptive dioids settle facts best-first), an asymptotic
//!   separation.

use dlo_bench::{print_table, GraphInstance};
use dlo_core::examples_lib::apsp_program;
use dlo_core::{BoolDatabase, EvalOutcome, Program};
use dlo_engine::{engine_eval, Strategy};
use dlo_pops::Trop;
use std::time::Instant;

fn main() {
    let bools = BoolDatabase::new();
    let mut rows = vec![];
    let chain = GraphInstance::path(1000);
    let random = GraphInstance::random(1000, 1500, 9, 7);
    let (grad_prog, grad_edb) = GraphInstance::gradient(2000).sssp();
    let cases: Vec<(&str, Program<Trop>, _)> = vec![
        ("chain_1k", apsp_program::<Trop>(), chain.trop_edb()),
        ("random_1k", apsp_program::<Trop>(), random.trop_edb()),
        ("gradient_2k", grad_prog, grad_edb),
    ];
    for (name, prog, edb) in &cases {
        let mut outs: Vec<(usize, usize)> = vec![];
        let mut dbs = vec![];
        for strategy in [Strategy::SemiNaive, Strategy::Worklist, Strategy::Priority] {
            let t0 = Instant::now();
            let out = engine_eval(prog, edb, &bools, 100_000_000, strategy);
            let ms = t0.elapsed().as_millis() as usize;
            let (db, steps) = match out {
                EvalOutcome::Converged { output, steps } => (output, steps),
                EvalOutcome::Diverged { .. } => unreachable!("workloads converge"),
            };
            outs.push((ms, steps));
            dbs.push(db);
        }
        assert_eq!(dbs[0], dbs[1], "{name}: worklist fixpoint differs");
        assert_eq!(dbs[0], dbs[2], "{name}: priority fixpoint differs");
        for (si, sname) in ["seminaive", "worklist", "priority"].iter().enumerate() {
            rows.push(vec![
                name.to_string(),
                sname.to_string(),
                format!("{}", outs[si].0),
                format!("{}", outs[si].1),
            ]);
        }
    }
    print_table(
        "engine strategies over Trop (steps: iterations / pops / batches)",
        &["instance", "strategy", "ms", "steps"],
        &rows,
    );
}
