//! Strategy comparison on iteration-bound workloads: semi-naïve global
//! iterations vs FIFO generation worklist vs bucketed priority frontier
//! (`dlo_engine::worklist`), with wall-clock timings and step counts.
//!
//! Three regimes:
//!
//! * `chain_1k` / `random_1k` — 1k-node transitive closure, where every
//!   strategy performs the same derivations (unique shortest paths) and
//!   the frontier wins constant factors only;
//! * `gradient_2k` — the Bellman-Ford worst case
//!   ([`GraphInstance::gradient`]): Θ(n²) updates for round-based
//!   semi-naïve vs Θ(n) settled pops for the frontier (Cor. 5.19 —
//!   absorptive dioids settle facts best-first), an asymptotic
//!   separation.
//!
//! Runs through the **decode-free** [`dlo_engine::engine_eval_interned`]
//! entry point: the `eval_ms` column is the pure fixpoint time and
//! `decode_ms` is the deferred rank-sorted `Database` materialization —
//! the phase a pipeline feeding results back into the engine never pays.
//! Support counts and the cross-strategy agreement check come straight
//! off the interned handles.

use dlo_bench::{print_table, GraphInstance};
use dlo_core::examples_lib::apsp_program;
use dlo_core::{BoolDatabase, Program};
use dlo_engine::{engine_eval_interned, EngineOpts, InternedOutcome, Strategy};
use dlo_pops::Trop;
use std::time::Instant;

fn main() {
    let bools = BoolDatabase::new();
    let opts = EngineOpts::default();
    let mut rows = vec![];
    let chain = GraphInstance::path(1000);
    let random = GraphInstance::random(1000, 1500, 9, 7);
    let (grad_prog, grad_edb) = GraphInstance::gradient(2000).sssp();
    let cases: Vec<(&str, &str, Program<Trop>, _)> = vec![
        ("chain_1k", "T", apsp_program::<Trop>(), chain.trop_edb()),
        ("random_1k", "T", apsp_program::<Trop>(), random.trop_edb()),
        ("gradient_2k", "L", grad_prog, grad_edb),
    ];
    for (name, out_pred, prog, edb) in &cases {
        let mut stats: Vec<(usize, usize, usize, usize)> = vec![];
        let mut dbs = vec![];
        for strategy in [Strategy::SemiNaive, Strategy::Worklist, Strategy::Priority] {
            let t0 = Instant::now();
            let out = engine_eval_interned(prog, edb, &bools, 100_000_000, strategy, &opts);
            let eval_ms = t0.elapsed().as_millis() as usize;
            let (out, steps) = match out {
                InternedOutcome::Converged { output, steps } => (output, steps),
                InternedOutcome::Diverged { .. } => unreachable!("workloads converge"),
            };
            // Support size is free on the interned handle — no decode.
            let support = out.support_size(out_pred);
            let t1 = Instant::now();
            let db = out.materialize();
            let decode_ms = t1.elapsed().as_millis() as usize;
            stats.push((eval_ms, decode_ms, steps, support));
            dbs.push(db);
        }
        assert_eq!(dbs[0], dbs[1], "{name}: worklist fixpoint differs");
        assert_eq!(dbs[0], dbs[2], "{name}: priority fixpoint differs");
        for (si, sname) in ["seminaive", "worklist", "priority"].iter().enumerate() {
            let (eval_ms, decode_ms, steps, support) = stats[si];
            rows.push(vec![
                name.to_string(),
                sname.to_string(),
                format!("{eval_ms}"),
                format!("{decode_ms}"),
                format!("{steps}"),
                format!("{support}"),
            ]);
        }
    }
    print_table(
        "engine strategies over Trop (steps: iterations / generations / batches; decode deferred via InternedOutput)",
        &["instance", "strategy", "eval_ms", "decode_ms", "steps", "support"],
        &rows,
    );
}
