//! E21: Example 1.1 / eq. (3) — all-pairs shortest paths.
//!
//! The same datalog° program, instantiated over `Trop⁺` (APSP) and `𝔹`
//! (transitive closure), cross-checked against the Floyd–Warshall oracle
//! and the matrix-closure substrate; plus the semi-naïve variant of
//! eq. (7) with identical answers (Theorem 6.4).

use dlo_bench::{print_table, GraphInstance};
use dlo_core::examples_lib::apsp_program;
use dlo_core::{ground_sparse, naive_eval_system, seminaive_eval_system, BoolDatabase};
use dlo_pops::{PreSemiring, Trop};
use dlo_semilin::{fwk_closure, Matrix};

#[allow(clippy::needless_range_loop)] // Floyd–Warshall reads clearest with indices
fn main() {
    let mut ok = true;
    let g = GraphInstance::random(7, 16, 9, 99);

    // datalog° APSP over Trop+.
    let prog = apsp_program::<Trop>();
    let edb = g.trop_edb();
    let sys = ground_sparse(&prog, &edb, &BoolDatabase::new());
    let naive = naive_eval_system(&sys, 100_000).unwrap();
    let (semi, stats) = seminaive_eval_system(&sys, 100_000);
    let semi = semi.unwrap();
    ok &= naive == semi;

    // Floyd–Warshall oracle.
    let inf = f64::INFINITY;
    let mut d = vec![vec![inf; g.n]; g.n];
    for &(u, v, w) in &g.edges {
        d[u][v] = d[u][v].min(w);
    }
    for k in 0..g.n {
        for i in 0..g.n {
            for j in 0..g.n {
                if d[i][k] + d[k][j] < d[i][j] {
                    d[i][j] = d[i][k] + d[k][j];
                }
            }
        }
    }

    // Matrix closure (A⁺ = A ⊗ A*): the program (3) computes paths of
    // length ≥ 1, matching A⁺ rather than the reflexive A*.
    let mut a = Matrix::<Trop>::zeros(g.n);
    for &(u, v, w) in &g.edges {
        let merged = Trop::finite(w).add(a.get(u, v));
        a.set(u, v, merged);
    }
    let aplus = a.mul(&fwk_closure(&a));

    let t = naive.get("T").unwrap();
    let mut rows = vec![];
    let mut mismatches = 0;
    for i in 0..g.n {
        for j in 0..g.n {
            let from_engine = t.get(&vec![g.node(i), g.node(j)]).get();
            let from_matrix = aplus.get(i, j).get();
            let from_fw = d[i][j];
            if from_engine != from_fw || from_matrix != from_fw {
                mismatches += 1;
            }
            if i < 3 && j < 3 {
                rows.push(vec![
                    format!("T({i},{j})"),
                    format!("{from_engine}"),
                    format!("{from_matrix}"),
                    format!("{from_fw}"),
                ]);
            }
        }
    }
    print_table(
        "Example 1.1 — APSP over Trop+: datalog° vs matrix closure vs Floyd–Warshall (3×3 corner)",
        &["pair", "datalog°", "A·A* (FWK)", "Floyd–Warshall"],
        &rows,
    );
    ok &= mismatches == 0;
    println!(
        "{} pairs cross-checked, {mismatches} mismatches; semi-naive = naive (Thm 6.4), semi-naive did {} monomial ops over {} iterations",
        g.n * g.n,
        stats.monomial_evals,
        stats.iterations
    );

    // Boolean reading: same program computes transitive closure.
    let (progb, edbb) =
        dlo_core::examples_lib::linear_tc_bool(&[("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")]);
    let sysb = ground_sparse(&progb, &edbb, &BoolDatabase::new());
    let outb = naive_eval_system(&sysb, 1000).unwrap();
    let tb = outb.get("T").unwrap();
    ok &= tb.support_size() == 12; // {a,b,c}×{a,b,c,d}: the cycle reaches all
    println!(
        "\nsame program over B on a 4-node graph: |TC| = {} tuples (expected 12)",
        tb.support_size()
    );

    println!("\n{}", if ok { "REPRO OK" } else { "REPRO MISMATCH" });
    std::process::exit(if ok { 0 } else { 1 });
}
