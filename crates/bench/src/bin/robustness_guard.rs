//! CI guard for resource governance (PR 8): re-runs the baseline's
//! `worklist_tc1k/worklist_trop/chain` leg with a full (never-tripping)
//! budget **and** a live cancellation token, and holds the governed
//! wall-clock within 5% of the committed `BENCH_worklist.json` median —
//! governance is a once-per-phase check on the coordinating thread and
//! must stay invisible. The measured legs (ungoverned re-run, budget
//! only, budget + cancel) are written to `BENCH_robustness.json` for
//! the artifact upload, together with the observed ratios and the
//! governance counters of one governed run.
//!
//! Like `telemetry_guard`, the timing gate is **strict only when the
//! host matches the baseline's recorded `host.nproc`**; elsewhere the
//! comparison is advisory — printed, never failing. The bit-identity
//! cross-check (governed output == ungoverned output) is strict
//! everywhere.
//!
//! PR 9 adds a **graceful-degradation leg**: the same chain instance on
//! the priority frontier under a budget that cannot finish must abort
//! with a *non-empty settled prefix*, every settled row bit-identical
//! to the converged fixpoint (settled-on-pop, Cor. 5.19). This check is
//! strict on every host.
//!
//! Usage (from the repo root, as CI does):
//!
//! ```console
//! $ cargo run --release -p dlo_bench --bin robustness_guard -- \
//!       [BENCH_worklist.json] [BENCH_robustness.json]
//! ```

use std::time::{Duration, Instant};

use dlo_bench::{host_metadata, print_host_note, GraphInstance};
use dlo_core::eval::stats::json;
use dlo_core::examples_lib::apsp_program;
use dlo_core::BoolDatabase;
use dlo_engine::{
    engine_eval_interned, engine_eval_partial_with_opts, CancelToken, EngineOpts, EvalBudget,
    InternedOutcome, Strategy,
};
use dlo_pops::Trop;

/// The baseline leg the guard re-measures under governance.
const BASELINE_ID: &str = "worklist_tc1k/worklist_trop/chain";

/// Allowed slowdown of the governed run over the recorded median.
const MARGIN: f64 = 1.05;

/// Timed runs per leg; the best one is compared (min-of-N absorbs
/// scheduler noise on a shared runner).
const RUNS: usize = 3;

fn roomy_budget() -> EvalBudget {
    EvalBudget::default()
        .with_deadline(Duration::from_secs(3600))
        .with_max_steps(u64::MAX / 2)
        .with_max_rows(u64::MAX / 2)
        .with_max_minted(u64::MAX / 2)
}

fn run_once(opts: &EngineOpts) -> (u64, dlo_core::Database<Trop>, dlo_engine::EvalStats) {
    let program = apsp_program::<Trop>();
    let edb = GraphInstance::path(1000).trop_edb();
    let bools = BoolDatabase::new();
    let t = Instant::now();
    let out = engine_eval_interned(
        &program,
        &edb,
        &bools,
        100_000_000,
        Strategy::Worklist,
        opts,
    )
    .expect("compiles");
    let elapsed = t.elapsed().as_nanos() as u64;
    assert!(
        matches!(out, InternedOutcome::Converged { .. }),
        "tc_chain_1k must converge"
    );
    let stats = out.stats().clone();
    let db = out
        .converged()
        .expect("converged checked above")
        .0
        .materialize();
    (elapsed, db, stats)
}

/// Best-of-N wall clock for one option set.
fn best_of(opts: &EngineOpts) -> (u64, dlo_core::Database<Trop>, dlo_engine::EvalStats) {
    let mut best: Option<(u64, dlo_core::Database<Trop>, dlo_engine::EvalStats)> = None;
    for _ in 0..RUNS {
        let run = run_once(opts);
        if best.as_ref().is_none_or(|(b, _, _)| run.0 < *b) {
            best = Some(run);
        }
    }
    best.expect("RUNS > 0")
}

fn main() {
    print_host_note();
    let mut args = std::env::args().skip(1);
    let baseline_path = args.next().unwrap_or_else(|| "BENCH_worklist.json".into());
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_robustness.json".into());

    // --- baseline ----------------------------------------------------------
    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("cannot read {baseline_path}: {e}"));
    let baseline = json::parse(&text).expect("baseline JSON parses");
    let baseline_nproc = baseline
        .get("host")
        .and_then(|h| h.get("nproc"))
        .and_then(|n| n.as_u64())
        .expect("baseline records host.nproc");
    let median_ns = baseline
        .get("results")
        .and_then(|r| r.as_arr())
        .and_then(|rows| {
            rows.iter()
                .find(|row| row.get("id").and_then(|i| i.as_str()) == Some(BASELINE_ID))
        })
        .and_then(|row| row.get("median_ns"))
        .and_then(|n| n.as_f64())
        .unwrap_or_else(|| panic!("baseline lacks a median for {BASELINE_ID}"));

    // --- the three legs ----------------------------------------------------
    let ungoverned_opts = EngineOpts::default();
    let budget_opts = EngineOpts {
        budget: roomy_budget(),
        ..EngineOpts::default()
    };
    let governed_opts = EngineOpts {
        budget: roomy_budget(),
        cancel: Some(CancelToken::new()),
        ..EngineOpts::default()
    };
    let (free_ns, free_out, _) = best_of(&ungoverned_opts);
    let (budget_ns, budget_out, _) = best_of(&budget_opts);
    let (gov_ns, gov_out, gov_stats) = best_of(&governed_opts);

    // Governance must never change results.
    assert_eq!(free_out, budget_out, "budgeted run is not bit-identical");
    assert_eq!(free_out, gov_out, "governed run is not bit-identical");
    assert!(gov_stats.counters.budget_checks > 0, "budget was checked");
    assert!(gov_stats.counters.cancel_polls > 0, "token was polled");

    let ratio_vs_baseline = gov_ns as f64 / median_ns;
    let ratio_vs_local = gov_ns as f64 / free_ns as f64;
    println!(
        "{BASELINE_ID} governed: best-of-{RUNS} {:.1}ms vs baseline median {:.1}ms \
         (x{ratio_vs_baseline:.3}, limit x{MARGIN}); local ungoverned {:.1}ms (x{ratio_vs_local:.3})",
        gov_ns as f64 / 1e6,
        median_ns / 1e6,
        free_ns as f64 / 1e6,
    );
    println!(
        "governance counters: {} budget checks, {} cancel polls over {} steps",
        gov_stats.counters.budget_checks, gov_stats.counters.cancel_polls, gov_stats.steps
    );

    // --- graceful degradation ----------------------------------------------
    // The same chain on the priority frontier, throttled to half the
    // steps a converged run needs: the abort must hand back a settled
    // prefix that is non-empty and bit-identical to the full fixpoint
    // on every settled row (settled-on-pop, Cor. 5.19).
    let program = apsp_program::<Trop>();
    let edb = GraphInstance::path(1000).trop_edb();
    let bools = BoolDatabase::new();
    let full = engine_eval_interned(
        &program,
        &edb,
        &bools,
        100_000_000,
        Strategy::Priority,
        &EngineOpts::default(),
    )
    .expect("compiles");
    let full_steps = full.stats().steps;
    let full_db = full
        .converged()
        .expect("priority tc_chain_1k converges")
        .0
        .materialize();
    let degraded_opts = EngineOpts {
        budget: EvalBudget::default().with_max_steps(full_steps / 2),
        ..EngineOpts::default()
    };
    let t = Instant::now();
    let degraded = engine_eval_partial_with_opts(
        &program,
        &edb,
        &bools,
        100_000_000,
        Strategy::Priority,
        &degraded_opts,
    )
    .expect_err("half the converged step count cannot finish the chain");
    let degraded_ns = t.elapsed().as_nanos() as u64;
    let degraded_kind = degraded.error().kind().to_string();
    assert!(
        matches!(degraded_kind.as_str(), "budget" | "deadline"),
        "degradation leg stopped for '{degraded_kind}', expected a governed abort"
    );
    let partial = degraded.partial();
    assert!(partial.is_exact(), "priority partials are settled-exact");
    let settled_rows = partial.settled().settled_rows();
    assert!(settled_rows > 0, "degraded run settled a non-empty prefix");
    let settled_db = partial.materialize_settled();
    let mut settled_checked = 0u64;
    for (pred, rel) in settled_db.iter() {
        let reference = full_db
            .get(pred)
            .expect("settled predicate exists in the full fixpoint");
        for (tuple, v) in rel.support() {
            assert_eq!(
                *v,
                reference.get(tuple),
                "settled {pred}({tuple:?}) differs from the converged value"
            );
            settled_checked += 1;
        }
    }
    assert!(settled_checked > 0, "settled snapshot carries rows");
    let full_rows: usize = full_db.iter().map(|(_, r)| r.support_size()).sum();
    println!(
        "degradation: {degraded_kind}-aborted priority run settled {settled_rows} rows \
         (full fixpoint: {full_rows}), all bit-identical to the converged answer"
    );

    // --- record ------------------------------------------------------------
    let (nproc, knob) = host_metadata();
    let results = [
        ("robustness_tc1k/worklist_trop/ungoverned", free_ns, RUNS),
        ("robustness_tc1k/worklist_trop/budget", budget_ns, RUNS),
        ("robustness_tc1k/worklist_trop/budget_cancel", gov_ns, RUNS),
        ("robustness_tc1k/priority_trop/degraded", degraded_ns, 1),
    ];
    let rows: Vec<String> = results
        .iter()
        .map(|(id, ns, samples)| {
            format!(
                "    {{\n      \"id\": \"{id}\",\n      \"best_ns\": {ns},\n      \"samples\": {samples}\n    }}"
            )
        })
        .collect();
    let report = format!(
        "{{\n  \"description\": \"Governed vs ungoverned wall-clock for the dlo_engine FIFO \
         worklist on 1000-node unit-chain transitive closure over Trop (best of {RUNS}). \
         Budgets and cancellation are checked once per phase on the coordinating thread; the \
         guard holds the fully governed leg within {MARGIN}x of the committed \
         BENCH_worklist.json median for {BASELINE_ID}. The degraded leg throttles the priority \
         frontier to half its converged step count and checks the abort returns a non-empty \
         settled prefix bit-identical to the full fixpoint. Reproduce with: cargo run --release \
         -p dlo_bench --bin robustness_guard.\",\n  \
         \"host\": {{\n    \"nproc\": {nproc},\n    \"dlo_engine_threads\": \"{knob}\",\n    \
         \"baseline_nproc\": {baseline_nproc}\n  }},\n  \
         \"baseline_id\": \"{BASELINE_ID}\",\n  \
         \"baseline_median_ns\": {median_ns},\n  \
         \"governed_over_baseline\": {ratio_vs_baseline:.4},\n  \
         \"governed_over_local_ungoverned\": {ratio_vs_local:.4},\n  \
         \"budget_checks\": {},\n  \"cancel_polls\": {},\n  \
         \"degraded\": {{\n    \"abort_kind\": \"{degraded_kind}\",\n    \
         \"settled_rows\": {settled_rows},\n    \"full_rows\": {full_rows}\n  }},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        gov_stats.counters.budget_checks,
        gov_stats.counters.cancel_polls,
        rows.join(",\n"),
    );
    json::parse(&report).expect("report round-trips through the in-tree parser");
    std::fs::write(&out_path, &report).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path}");

    // --- overhead gate ------------------------------------------------------
    let strict = nproc as u64 == baseline_nproc;
    if ratio_vs_baseline <= MARGIN {
        println!("governance overhead within budget");
    } else if strict {
        eprintln!(
            "FAIL: governed run exceeds the baseline envelope on the baseline's host class \
             (nproc={nproc})"
        );
        std::process::exit(1);
    } else {
        println!(
            "advisory only: host nproc={nproc} differs from baseline nproc={baseline_nproc}, \
             not failing"
        );
    }
}
