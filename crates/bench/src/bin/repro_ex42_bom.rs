//! E5: Example 4.2 — bill of material on the Fig. 2(b) graph.
//!
//! Over ℕ the program diverges (the a↔b cycle keeps growing); over the
//! lifted reals `ℝ_⊥` it converges in 3 steps to `T = (⊥, ⊥, 11, 10)` —
//! the paper's table.

use dlo_core::examples_lib as ex;
use dlo_core::tup;
use dlo_core::{ground, naive_eval, naive_eval_trace, EvalOutcome};
use dlo_pops::lifted::lreal;
use dlo_pops::LiftedReal;

fn main() {
    let mut ok = true;

    // --- over ℕ: divergence -------------------------------------------------
    let (prog_n, pops_n, bools_n) = ex::bom_naturals();
    let out = naive_eval(&prog_n, &pops_n, &bools_n, 50);
    println!("Example 4.2 over N: naive algorithm with cap 50 iterations …");
    match &out {
        EvalOutcome::Diverged { last, cap, .. } => {
            println!(
                "  DIVERGES as the paper predicts (cap {cap} hit; T(a) has grown to {:?})\n",
                last.get("T").unwrap().get(&tup!["a"])
            );
        }
        EvalOutcome::Converged { .. } => {
            println!("  unexpectedly converged!\n");
            ok = false;
        }
    }

    // --- over ℝ_⊥: the paper's 4-row table ----------------------------------
    let (prog, pops, bools) = ex::bom_lifted_reals();
    let sys = ground(&prog, &pops, &bools);
    let trace = naive_eval_trace(&sys, 100);
    println!("Example 4.2 over the lifted reals R_⊥ — naive trace, Fig. 2(b) graph\n");
    print!("{}", trace.render());
    println!();
    ok &= trace.converged;
    // The paper's table shows T0..T3 with T3 = T2; the stability index per
    // the Sec. 4 definition is 2.
    ok &= trace.iterates.len() - 1 == 2;
    let out = naive_eval(&prog, &pops, &bools, 100).unwrap();
    let t = out.get("T").unwrap();
    ok &= t.get(&tup!["a"]) == LiftedReal::Bot;
    ok &= t.get(&tup!["b"]) == LiftedReal::Bot;
    ok &= t.get(&tup!["c"]) == lreal(11.0);
    ok &= t.get(&tup!["d"]) == lreal(10.0);
    println!("paper: T(a) = T(b) = ⊥ (on the cycle), T(c) = 11, T(d) = 10, in 3 steps");

    println!("{}", if ok { "REPRO OK" } else { "REPRO MISMATCH" });
    std::process::exit(if ok { 0 } else { 1 });
}
