//! E8: the five-way convergence taxonomy of Sec. 4.2, one witness each.
//!
//! (i)   ⋁ J(t) is not a fixpoint        — ℕ×ℕ lexicographic, F(x,y)=(x,y+1)
//! (ii)  lfp exists, naïve diverges      — ℕ∪{∞}, f(x) = x+1
//! (iii) always converges, data-dependent steps — Trop⁺_{≤η} (stable,
//!       not uniformly: steps grow with 1/weight)
//! (iv)  converges in steps depending only on |ADom| — Trop⁺_p
//! (v)   converges in polynomially many steps — 𝔹 / Trop⁺ (0-stable)

use dlo_bench::{print_table, GraphInstance};
use dlo_core::{naive_eval_sparse, BoolDatabase};
use dlo_fixpoint::{naive_lfp, Outcome};
use dlo_pops::natpair_lex::{case_i_chain_lub, case_i_ico};
use dlo_pops::{NatInf, NatPairLex, Pops, PreSemiring, TropEta, TropP};

fn main() {
    let mut ok = true;
    let mut rows: Vec<Vec<String>> = vec![];

    // (i) — the lub of the Kleene chain is not a fixpoint.
    {
        let lub = case_i_chain_lub();
        let not_fix = case_i_ico(lub) != lub;
        let chain_below = {
            let mut x = NatPairLex::bottom();
            (0..100).all(|_| {
                let below = x.leq(&lub);
                x = case_i_ico(x);
                below
            })
        };
        ok &= not_fix && chain_below;
        rows.push(vec![
            "(i)".into(),
            "N×N lex, F(x,y)=(x,y+1)".into(),
            format!("⋁J(t)=(1,0) fixpoint? {}", !not_fix),
        ]);
    }

    // (ii) — lfp = ∞ exists but naive never reaches it.
    {
        let f = |x: &NatInf| x.add(&NatInf::one());
        let diverges = matches!(
            naive_lfp(f, NatInf::bottom(), 1000),
            Outcome::Diverged { .. }
        );
        let inf_is_fixpoint = f(&NatInf::Inf) == NatInf::Inf;
        ok &= diverges && inf_is_fixpoint;
        rows.push(vec![
            "(ii)".into(),
            "N∪{∞}, f(x)=x+1".into(),
            format!("lfp=∞ exists, naive diverges: {diverges}"),
        ]);
    }

    // (iii) — Trop⁺_{≤η}: converges, steps depend on the VALUES (weights).
    {
        type T = TropEta<64>;
        // x :- 1 ⊕ w·x with w the weight: stability index ~ η/w.
        let steps_for = |w: u64| -> usize {
            let c = T::singleton(w);
            dlo_pops::stability::element_stability_index(&c, 10_000).unwrap()
        };
        let (s8, s2, s1) = (steps_for(8), steps_for(2), steps_for(1));
        ok &= s8 < s2 && s2 < s1;
        rows.push(vec![
            "(iii)".into(),
            "Trop+_{<=64}".into(),
            format!("index(w=8)={s8} < index(w=2)={s2} < index(w=1)={s1}"),
        ]);
    }

    // (iv) — Trop⁺_p: steps bounded by a function of |ADom| only
    // ((p+1)·N − 1 for linear programs), independent of the weights.
    {
        const P: usize = 2;
        let g1 = GraphInstance::cycle(6);
        let steps = |scale: f64| -> usize {
            let mut edb = dlo_core::Database::<TropP<P>>::new();
            edb.insert(
                "E",
                dlo_core::Relation::from_pairs(
                    2,
                    g1.edges.iter().map(|&(u, v, w)| {
                        (
                            vec![g1.node(u), g1.node(v)],
                            TropP::<P>::from_costs(&[w * scale]),
                        )
                    }),
                ),
            );
            let prog = dlo_bench::single_source_int_program::<TropP<P>>(0);
            match naive_eval_sparse(&prog, &edb, &BoolDatabase::new(), 10_000) {
                dlo_core::EvalOutcome::Converged { steps, .. } => steps,
                _ => usize::MAX,
            }
        };
        let (a, b) = (steps(1.0), steps(1000.0));
        ok &= a == b && a <= (P + 1) * 6;
        rows.push(vec![
            "(iv)".into(),
            format!("Trop+_{P} 6-cycle"),
            format!(
                "steps {a} = {b} regardless of weights (≤ (p+1)N = {})",
                (P + 1) * 6
            ),
        ]);
    }

    // (v) — 0-stable: ≤ N steps (Corollary 5.19).
    {
        let g = GraphInstance::random(14, 40, 9, 7);
        let (prog, edb) = g.sssp();
        match naive_eval_sparse(&prog, &edb, &BoolDatabase::new(), 10_000) {
            dlo_core::EvalOutcome::Converged { steps, .. } => {
                ok &= steps <= g.n;
                rows.push(vec![
                    "(v)".into(),
                    "Trop+ random graph n=14".into(),
                    format!("steps {steps} ≤ N = {}", g.n),
                ]);
            }
            _ => ok = false,
        }
    }

    print_table(
        "Sec. 4.2 — the five convergence/divergence classes",
        &["case", "witness POPS", "observation"],
        &rows,
    );
    println!("{}", if ok { "REPRO OK" } else { "REPRO MISMATCH" });
    std::process::exit(if ok { 0 } else { 1 });
}
