//! E10/E11: Example 5.7 + Fig. 3 — parse trees and Lemma 5.6.
//!
//! Lists the x-rooted parse trees of depth ≤ 2 of the Example 5.7 grammar
//! and verifies Lemma 5.6 (formal iterate = Σ of tree yields) on it and on
//! random grammars.

use dlo_provenance::grammar::{check_lemma_5_6, example_5_7, trees_upto, Grammar};
use dlo_provenance::{formal_iterates, Sym};

fn render_tree(
    g: &Grammar,
    names: &dyn Fn(Sym) -> char,
    vars: &[&str],
    t: &dlo_provenance::Tree,
) -> String {
    let prod = &g.prods[t.var][t.prod];
    if t.children.is_empty() {
        format!("{}→{}", vars[t.var], names(prod.terminal))
    } else {
        let kids: Vec<String> = t
            .children
            .iter()
            .map(|c| render_tree(g, names, vars, c))
            .collect();
        format!(
            "{}→{}[{}]",
            vars[t.var],
            names(prod.terminal),
            kids.join(", ")
        )
    }
}

fn main() {
    let mut ok = true;
    let (g, _) = example_5_7();
    let names = |s: Sym| b"abcuvw"[s.0 as usize] as char;

    println!("Example 5.7 grammar: x → a x y | b y | c ; y → u x y | v x | w\n");
    println!("x-rooted parse trees of depth ≤ 2 (Fig. 3) and their yields:");
    let trees = trees_upto(&g, 0, 2, 1000).unwrap();
    for t in &trees {
        let y = t.yield_expo(&g);
        let yield_str: String =
            y.0.iter()
                .flat_map(|(s, k)| std::iter::repeat_n(names(*s), *k as usize))
                .collect();
        println!(
            "  {:<28} yield {}",
            render_tree(&g, &names, &["x", "y"], t),
            yield_str
        );
    }
    ok &= trees.len() == 3;

    // (f^(2)(0))₁ = a·c·w + b·w + c — from the formal side.
    let its = formal_iterates(&g.to_formal_system(), 2);
    println!(
        "\n(f^(2)(0))_x = {:?}   (s0..s5 = a, b, c, u, v, w)",
        its[2][0]
    );
    ok &= its[2][0].len() == 3;

    // Lemma 5.6 on Example 5.7 and on pseudo-random grammars.
    println!("\nLemma 5.6 checks (formal iterate == Σ yields of trees of depth ≤ q):");
    ok &= check_lemma_5_6(&g, 3, 5_000_000).is_ok();
    println!("  example 5.7, q ≤ 3: OK");

    let mut seed = 0xabcdef1234567890u64;
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for trial in 0..6 {
        // Random grammar: 2 vars, ≤3 productions each, arity ≤ 2.
        let nvars = 2 + (rng() % 2) as usize;
        let mut rg = Grammar::new(nvars);
        let mut sym = 0u32;
        for v in 0..nvars {
            let nprods = 1 + rng() % 3;
            for _ in 0..nprods {
                let arity = (rng() % 3) as usize;
                let children: Vec<usize> = (0..arity)
                    .map(|_| (rng() % nvars as u64) as usize)
                    .collect();
                rg.add(v, Sym(sym), children);
                sym += 1;
            }
        }
        match check_lemma_5_6(&rg, 3, 5_000_000) {
            Ok(()) => println!("  random grammar #{trial} ({nvars} vars): OK"),
            Err((i, q)) => {
                println!("  random grammar #{trial}: MISMATCH at var {i}, q={q}");
                ok = false;
            }
        }
    }

    println!("\n{}", if ok { "REPRO OK" } else { "REPRO MISMATCH" });
    std::process::exit(if ok { 0 } else { 1 });
}
