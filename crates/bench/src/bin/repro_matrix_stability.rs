//! E17: Lemma 5.20 / Corollary 5.21 — matrix stability over `Trop⁺_p`.
//!
//! The `N`-cycle attains exactly `(p+1)·N − 1`; random matrices stay at or
//! below the bound. Also cross-checks the Floyd–Warshall–Kleene closure
//! against the iterative one on every instance.

use dlo_bench::print_table;
use dlo_fixpoint::trop_p_matrix_bound;
use dlo_pops::{PreSemiring, TropP};
use dlo_semilin::{closure_fixpoint, fwk_closure, matrix_stability_index, trop_p_cycle, Matrix};

fn cycle_row<const P: usize>(n: usize, ok: &mut bool) -> Vec<String> {
    let a = trop_p_cycle::<P>(n);
    let q = matrix_stability_index(&a, 100_000).unwrap();
    let bound = trop_p_matrix_bound(P, n);
    *ok &= q as u128 == bound;
    // FWK agrees with the iterated closure.
    let (iter, _) = closure_fixpoint(&a, 100_000).unwrap();
    *ok &= fwk_closure(&a) == iter;
    vec![
        format!("p={P}, N={n}"),
        q.to_string(),
        bound.to_string(),
        "yes".into(),
    ]
}

fn main() {
    let mut ok = true;

    let rows = vec![
        cycle_row::<0>(4, &mut ok),
        cycle_row::<0>(8, &mut ok),
        cycle_row::<1>(4, &mut ok),
        cycle_row::<1>(8, &mut ok),
        cycle_row::<2>(4, &mut ok),
        cycle_row::<2>(8, &mut ok),
        cycle_row::<3>(6, &mut ok),
        cycle_row::<4>(5, &mut ok),
    ];
    print_table(
        "Lemma 5.20 — the N-cycle over Trop+_p attains exactly (p+1)N−1",
        &["instance", "measured index", "(p+1)N−1", "FWK = iterative?"],
        &rows,
    );

    // Random matrices: index ≤ bound, FWK agreement.
    const P: usize = 2;
    let mut rows = vec![];
    let mut seed = 0x1234_5678_9abc_def0u64;
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for n in [3usize, 5, 7, 9] {
        let mut worst = 0usize;
        for _ in 0..20 {
            let a = Matrix::<TropP<P>>::from_fn(n, |_, _| {
                if rng() % 3 == 0 {
                    TropP::<P>::from_costs(&[(rng() % 9) as f64])
                } else {
                    TropP::<P>::zero()
                }
            });
            let q = matrix_stability_index(&a, 100_000).unwrap();
            ok &= q as u128 <= trop_p_matrix_bound(P, n);
            let (iter, _) = closure_fixpoint(&a, 100_000).unwrap();
            ok &= fwk_closure(&a) == iter;
            worst = worst.max(q);
        }
        rows.push(vec![
            format!("N={n} (20 random)"),
            worst.to_string(),
            trop_p_matrix_bound(P, n).to_string(),
        ]);
    }
    print_table(
        "Cor. 5.21 — random Trop+_2 matrices: worst measured index ≤ (p+1)N−1",
        &["instance", "worst index", "bound"],
        &rows,
    );

    println!("{}", if ok { "REPRO OK" } else { "REPRO MISMATCH" });
    std::process::exit(if ok { 0 } else { 1 });
}
