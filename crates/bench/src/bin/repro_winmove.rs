//! E22/E23/E24: Sec. 7 — win-move under three semantics.
//!
//! * the alternating-fixpoint table J(0)..J(6) of Sec. 7.1 (Fig. 4 graph);
//! * the datalog°-over-THREE table W(0)..W(4) of Sec. 7.2;
//! * their agreement with each other and with a game-theoretic oracle on
//!   the figure and on random graphs;
//! * the `P(a) :- P(a)` discrepancy of Sec. 7.3;
//! * FOUR never derives ⊤ in the lfp (Fitting's Prop. 7.1 check, E29).

use dlo_bench::print_table;
use dlo_pops::{Four, Pops, PreSemiring};
use dlo_wellfounded::{
    fig4_adjacency, fitting_lfp, well_founded, win_move_program, Literal, NegProgram,
    WinMoveInstance,
};

fn main() {
    let mut ok = true;
    let p = win_move_program(&fig4_adjacency());
    let order = ["a", "b", "c", "d", "e", "f"];
    let ix = |n: &str| p.atom_index(&format!("W({n})")).unwrap();

    // --- Sec. 7.1: alternating fixpoint table ------------------------------
    let wf = well_founded(&p);
    let mut rows = vec![];
    for (t, interp) in wf.trace.iter().enumerate() {
        let mut row = vec![format!("J({t})")];
        row.extend(
            order
                .iter()
                .map(|n| if interp[ix(n)] { "1" } else { "0" }.to_string()),
        );
        rows.push(row);
    }
    let mut headers = vec!["iterate"];
    headers.extend(order.iter().map(|n| match *n {
        "a" => "W(a)",
        "b" => "W(b)",
        "c" => "W(c)",
        "d" => "W(d)",
        "e" => "W(e)",
        _ => "W(f)",
    }));
    print_table(
        "Sec. 7.1 — alternating fixpoint on the Fig. 4 win-move game",
        &headers,
        &rows,
    );

    // --- Sec. 7.2: THREE-valued naive trace ---------------------------------
    let (lfp3, trace3) = fitting_lfp(&p);
    let mut rows = vec![];
    for (t, interp) in trace3.iter().enumerate() {
        let mut row = vec![format!("W({t})")];
        row.extend(order.iter().map(|n| {
            match interp[ix(n)] {
                dlo_pops::Three::Undef => "⊥",
                dlo_pops::Three::False => "0",
                dlo_pops::Three::True => "1",
            }
            .to_string()
        }));
        rows.push(row);
    }
    print_table(
        "Sec. 7.2 — datalog° over THREE on the same game (lfp = W(4))",
        &headers,
        &rows,
    );
    ok &= trace3.len() == 5;

    // Agreement: well-founded == Fitting == oracle, on Fig. 4 …
    let fig4_inst = WinMoveInstance {
        n: 6,
        edges: vec![(0, 1), (0, 2), (1, 0), (2, 3), (2, 4), (3, 4), (4, 5)],
    };
    match fig4_inst.check_equivalence() {
        Ok(assign) => {
            println!("well-founded = Fitting/THREE = game oracle on Fig. 4: {assign:?}\n");
        }
        Err(e) => {
            println!("DISAGREEMENT on Fig. 4: {e}\n");
            ok = false;
        }
    }
    let _ = lfp3;

    // … and on 40 random graphs.
    let mut agree = 0;
    for seed in 1..=40u64 {
        let inst = WinMoveInstance::random(9, 18, seed);
        match inst.check_equivalence() {
            Ok(_) => agree += 1,
            Err(e) => {
                println!("seed {seed}: {e}");
                ok = false;
            }
        }
    }
    println!("random graphs: {agree}/40 agree across all three semantics\n");

    // --- Sec. 7.3: the P(a) :- P(a) discrepancy ----------------------------
    let mut q = NegProgram::new();
    let a = q.atom("P(a)");
    q.rule(a, vec![Literal::Pos(a)]);
    let (l3, _) = fitting_lfp(&q);
    let wfq = well_founded(&q);
    println!(
        "Sec. 7.3 — P(a) :- P(a): THREE lfp says {:?}, well-founded says {:?} (they differ, as Fitting discusses)",
        l3[a], wfq.assignment[a]
    );
    ok &= l3[a] == dlo_pops::Three::Undef;
    ok &= wfq.assignment[a] == dlo_wellfounded::Wf::False;

    // --- E29: FOUR never reaches ⊤ in the lfp -------------------------------
    // Iterate win-move ICO over FOUR from ⊥ on random instances.
    let mut top_seen = false;
    for seed in 1..=20u64 {
        let inst = WinMoveInstance::random(7, 12, seed);
        let prog = inst.program();
        let n = prog.num_atoms();
        let mut x = vec![Four::Undef; n];
        for _ in 0..100 {
            let mut next = vec![Four::False; n];
            for r in &prog.rules {
                let mut v = Four::True;
                for l in &r.body {
                    let lit = match l {
                        Literal::Pos(b) => x[*b],
                        Literal::Neg(b) => x[*b].not(),
                    };
                    v = v.mul(&lit);
                }
                next[r.head] = next[r.head].add(&v);
            }
            if next == x {
                break;
            }
            x = next;
        }
        top_seen |= x.contains(&Four::Both);
        // And FOUR's lfp restricted to {⊥,0,1} equals THREE's.
        let (three, _) = fitting_lfp(&prog);
        ok &= x
            .iter()
            .zip(&three)
            .all(|(f, t)| *f == Four::from_three(*t));
    }
    println!(
        "FOUR lfp on 20 random games: ⊤ derived? {top_seen} (Fitting Prop. 7.1 predicts never); agrees with THREE lfp"
    );
    ok &= !top_seen;
    let _ = Four::bottom();

    println!("\n{}", if ok { "REPRO OK" } else { "REPRO MISMATCH" });
    std::process::exit(if ok { 0 } else { 1 });
}
