//! E14: Examples 5.15 and 5.5's absorption — how stable semirings absorb
//! new monomials.
//!
//! Over a 1-stable semiring, `f(x) = a₀ + a₂x² + a₃x³ + a₄x⁴` satisfies
//! `f^(4)(0) = f^(3)(0)` even though new *formal* monomials keep appearing
//! (e.g. `a₀⁵a₂²a₃`): 1-stability makes them redundant, witnessed by the
//! identity `a₀³a₃ + a₀⁴a₂a₃ + a₀⁵a₂²a₃ = a₀³a₃ + a₀⁴a₂a₃` (Example 5.15).
//! We check all of this concretely over `Trop⁺₁` (which is 1-stable) and
//! over `Trop⁺₂` for the analogous 2-stable statement.

use dlo_core::tup;
use dlo_core::{naive_eval, BoolDatabase, Database};
use dlo_pops::{PreSemiring, TropP};

/// Builds x :- a0 ⊕ a2·x² ⊕ a3·x³ ⊕ a4·x⁴ as a datalog° program over P.
fn example_5_15_program<P: dlo_pops::Pops>(
    a0: P,
    a2: P,
    a3: P,
    a4: P,
) -> (dlo_core::Program<P>, Database<P>) {
    use dlo_core::ast::{Atom, Factor, Program, SumProduct, Term};
    let x = || Factor::atom("X", vec![Term::c("u")]);
    let mut p = Program::new();
    p.rule(
        Atom::new("X", vec![Term::c("u")]),
        vec![
            SumProduct::new(vec![]).with_coeff(a0),
            SumProduct::new(vec![x(), x()]).with_coeff(a2),
            SumProduct::new(vec![x(), x(), x()]).with_coeff(a3),
            SumProduct::new(vec![x(), x(), x(), x()]).with_coeff(a4),
        ],
    );
    (p, Database::new())
}

fn main() {
    let mut ok = true;

    // Example 5.15's absorption identity over Trop+_1:
    // a0³a3 + a0⁴a2a3 + a0⁵a2²a3 = a0³a3 + a0⁴a2a3 for arbitrary elements.
    type T1 = TropP<1>;
    let a0 = T1::from_costs(&[1.0, 3.0]);
    let a2 = T1::from_costs(&[2.0]);
    let a3 = T1::from_costs(&[0.5, 4.0]);
    let t1 = a0.pow(3).mul(&a3);
    let t2 = a0.pow(4).mul(&a2).mul(&a3);
    let t3 = a0.pow(5).mul(&a2.pow(2)).mul(&a3);
    let lhs = t1.add(&t2).add(&t3);
    let rhs = t1.add(&t2);
    println!("Example 5.15 absorption identity over Trop+_1:");
    println!("  a0³a3 + a0⁴a2a3 + a0⁵a2²a3 = {:?}", lhs.costs());
    println!("  a0³a3 + a0⁴a2a3           = {:?}", rhs.costs());
    ok &= lhs == rhs;

    // The full fixpoint claim: over a 1-stable semiring the program
    // converges with stability index ≤ 3 (the paper computes index
    // exactly 3 for generic coefficients).
    let (prog, edb) = example_5_15_program(
        T1::from_costs(&[1.0]),
        T1::from_costs(&[2.0]),
        T1::from_costs(&[3.0]),
        T1::from_costs(&[4.0]),
    );
    match naive_eval(&prog, &edb, &BoolDatabase::new(), 100) {
        dlo_core::EvalOutcome::Converged { steps, output, .. } => {
            println!("\nf(x) = a0 + a2x² + a3x³ + a4x⁴ over Trop+_1:");
            println!("  converged in {steps} steps (paper: stability index 3)");
            println!(
                "  lfp X = {:?}",
                output.get("X").unwrap().get(&tup!["u"]).costs()
            );
            ok &= steps <= 4;
        }
        _ => {
            println!("unexpected divergence");
            ok = false;
        }
    }

    // Sanity on a 2-stable semiring too: must converge (Theorem 5.10).
    type T2 = TropP<2>;
    let (prog2, edb2) = example_5_15_program(
        T2::from_costs(&[1.0, 5.0]),
        T2::from_costs(&[2.0]),
        T2::from_costs(&[3.0, 3.0]),
        T2::from_costs(&[4.0]),
    );
    match naive_eval(&prog2, &edb2, &BoolDatabase::new(), 1000) {
        dlo_core::EvalOutcome::Converged { steps, .. } => {
            println!("\nsame program over Trop+_2: converged in {steps} steps");
            ok &= steps <= 10;
        }
        _ => ok = false,
    }

    println!("\n{}", if ok { "REPRO OK" } else { "REPRO MISMATCH" });
    std::process::exit(if ok { 0 } else { 1 });
}
