//! CI guard for the sorted-arrangement merge-join path (PR 10): runs
//! the hash-join and merge-join configurations of the semi-naïve
//! engine head to head on five workloads — chain transitive closure,
//! single-source shortest path on a random digraph, the head-keyed hop
//! workload, the arity-4 labeled closure whose three-column probe key
//! defeats the packed-`u64` hash fast path, and the build-dominated
//! wide fact lookup whose two prefix-sharing wide masks one
//! arrangement serves where hashing builds two boxed-key indexes — and
//! writes the measured comparison to `BENCH_arrange.json` for the
//! artifact upload.
//!
//! Three checks ride along:
//!
//! * **bit-identity** (strict everywhere): both join modes must return
//!   the same database on every workload, and the merge legs must
//!   actually route probes through arrangements (`merge_join_steps`);
//! * **arranged speedup** (strict when recording a fresh baseline,
//!   advisory against a committed one): at least one workload must run
//!   ≥ 1.3× faster arranged than hashed — the wide-key regime the
//!   arrangements were built for;
//! * **regression gate** (strict only when the host matches the
//!   committed baseline's `host.nproc`, like `robustness_guard`): the
//!   live merge-join TC leg must stay ≥ 1.0× the baseline's hash-join
//!   median — the planner auto-arranges arity > 2, so merge losing to
//!   hash on the arity-4 closure means the default plan regressed.
//!
//! Usage (from the repo root, as CI does):
//!
//! ```console
//! $ cargo run --release -p dlo_bench --bin arrange_guard -- \
//!       [BENCH_arrange.json] [BENCH_arrange.json]
//! ```

use std::time::Instant;

use dlo_bench::{
    host_metadata, labeled_tc4, print_host_note, print_table, wide_lookup, GraphInstance,
};
use dlo_core::eval::stats::json;
use dlo_core::examples_lib::apsp_program;
use dlo_core::{BoolDatabase, Database, Program};
use dlo_engine::{engine_eval_with_opts, EngineOpts, JoinMode, Strategy};
use dlo_pops::Trop;

/// The leg the regression gate compares against the committed baseline.
const GATE_ID: &str = "arrange_tc4/labeled_trop/seminaive";

/// Timed runs per (workload, mode); the median is recorded and the
/// best is gated (min-of-N absorbs scheduler noise on a shared runner).
const RUNS: usize = 3;

const CAP: usize = 100_000_000;

/// Required arranged speedup on at least one workload when recording.
const SPEEDUP_FLOOR: f64 = 1.3;

fn mode_opts(mode: JoinMode) -> EngineOpts {
    EngineOpts {
        join_mode: Some(mode),
        ..EngineOpts::default()
    }
}

/// One measured workload: per-mode wall-clock samples (ns).
struct Leg {
    id: &'static str,
    hash_ns: Vec<u64>,
    merge_ns: Vec<u64>,
}

impl Leg {
    fn hash_median(&self) -> u64 {
        median(&self.hash_ns)
    }
    fn merge_median(&self) -> u64 {
        median(&self.merge_ns)
    }
    fn merge_best(&self) -> u64 {
        *self.merge_ns.iter().min().expect("RUNS > 0")
    }
    /// Hash-median over merge-median: > 1 means arranged is faster.
    fn speedup(&self) -> f64 {
        self.hash_median() as f64 / self.merge_median() as f64
    }
}

fn median(samples: &[u64]) -> u64 {
    let mut s = samples.to_vec();
    s.sort_unstable();
    s[s.len() / 2]
}

/// Times `RUNS` runs per join mode and cross-checks bit-identity and
/// the probe-routing counters between the modes.
fn measure(id: &'static str, program: &Program<Trop>, edb: &Database<Trop>) -> Leg {
    let bools = BoolDatabase::new();
    let timed = |mode: JoinMode| -> (Vec<u64>, Database<Trop>, u64, u64) {
        let o = mode_opts(mode);
        let mut samples = vec![];
        let mut kept = None;
        for _ in 0..RUNS {
            let t = Instant::now();
            let out = engine_eval_with_opts(program, edb, &bools, CAP, Strategy::SemiNaive, &o)
                .expect("compiles");
            samples.push(t.elapsed().as_nanos() as u64);
            assert!(out.is_converged(), "{id}: {mode:?} leg converges");
            let c = &out.stats().counters;
            kept = Some((c.merge_join_steps, c.hash_join_steps, out));
        }
        let (merge_steps, hash_steps, out) = kept.expect("RUNS > 0");
        (samples, out.unwrap(), merge_steps, hash_steps)
    };
    let (hash_ns, hash_db, h_merge, _) = timed(JoinMode::Hash);
    let (merge_ns, merge_db, m_merge, m_hash) = timed(JoinMode::Merge);
    assert_eq!(
        hash_db, merge_db,
        "{id}: join mode changed the fixpoint — merge join is broken"
    );
    assert_eq!(h_merge, 0, "{id}: forced hash must not probe arrangements");
    assert_eq!(m_hash, 0, "{id}: forced merge must not hash-probe");
    assert!(
        m_merge > 0,
        "{id}: forced merge routed no probes through arrangements"
    );
    Leg {
        id,
        hash_ns,
        merge_ns,
    }
}

fn main() {
    print_host_note();
    let mut args = std::env::args().skip(1);
    let baseline_path = args.next().unwrap_or_else(|| "BENCH_arrange.json".into());
    let out_path = args.next().unwrap_or_else(|| "BENCH_arrange.json".into());

    // --- committed baseline (absent on a fresh record) ----------------------
    let baseline = std::fs::read_to_string(&baseline_path)
        .ok()
        .map(|text| json::parse(&text).expect("baseline JSON parses"));
    let recording = baseline.is_none();

    // --- the five workloads -------------------------------------------------
    let (tc4_prog, tc4_edb) = labeled_tc4(4, 256);
    let (wide_prog, wide_edb) = wide_lookup(1_000_000, 20_000, 42);
    let tc_prog = apsp_program::<Trop>();
    let tc_edb = GraphInstance::path(512).trop_edb();
    let (sssp_prog, sssp_edb) = GraphInstance::random(2000, 8000, 9, 11).sssp();
    let (hops_prog, hops_edb) = GraphInstance::random(1200, 7200, 9, 7).hops(12);
    let legs = [
        measure(GATE_ID, &tc4_prog, &tc4_edb),
        measure("arrange_lookup/wide_trop/seminaive", &wide_prog, &wide_edb),
        measure("arrange_tc512/chain_trop/seminaive", &tc_prog, &tc_edb),
        measure("arrange_sssp/random_trop/seminaive", &sssp_prog, &sssp_edb),
        measure("arrange_hops/keyed_trop/seminaive", &hops_prog, &hops_edb),
    ];

    let rows: Vec<Vec<String>> = legs
        .iter()
        .map(|leg| {
            vec![
                leg.id.to_string(),
                format!("{:.1}", leg.hash_median() as f64 / 1e6),
                format!("{:.1}", leg.merge_median() as f64 / 1e6),
                format!("{:.2}x", leg.speedup()),
            ]
        })
        .collect();
    print_table(
        &format!("hash vs merge join (median of {RUNS}; speedup > 1 means arranged is faster)"),
        &["workload", "hash_ms", "merge_ms", "arranged_speedup"],
        &rows,
    );

    // --- arranged-speedup floor ---------------------------------------------
    let best_speedup = legs
        .iter()
        .map(Leg::speedup)
        .fold(f64::NEG_INFINITY, f64::max);
    if best_speedup >= SPEEDUP_FLOOR {
        println!("arranged speedup floor met: best {best_speedup:.2}x >= {SPEEDUP_FLOOR}x");
    } else if recording {
        eprintln!(
            "FAIL: no workload reached the {SPEEDUP_FLOOR}x arranged speedup floor \
             (best {best_speedup:.2}x) while recording a fresh baseline"
        );
        std::process::exit(1);
    } else {
        println!(
            "advisory only: best arranged speedup {best_speedup:.2}x below the \
             {SPEEDUP_FLOOR}x recording floor on this host"
        );
    }

    // --- record -------------------------------------------------------------
    let (nproc, knob) = host_metadata();
    let result_rows: Vec<String> = legs
        .iter()
        .map(|leg| {
            format!(
                "    {{\n      \"id\": \"{}\",\n      \"hash_median_ns\": {},\n      \
                 \"merge_median_ns\": {},\n      \"arranged_speedup\": {:.4},\n      \
                 \"samples\": {RUNS}\n    }}",
                leg.id,
                leg.hash_median(),
                leg.merge_median(),
                leg.speedup(),
            )
        })
        .collect();
    let report = format!(
        "{{\n  \"description\": \"Forced hash-join vs forced merge-join wall-clock for the \
         dlo_engine semi-naive driver (median of {RUNS}) on: the arity-4 labeled closure \
         (three-column probe key, past the packed-u64 hash fast path — the regime the planner \
         auto-arranges), the build-dominated wide fact lookup (1M-row arity-4 table, two \
         prefix-sharing wide probe masks served by one arrangement vs two boxed-key hash \
         indexes), 512-node chain transitive closure, single-source shortest path on a \
         random 2000-node digraph, and the head-keyed hop workload. Both modes are asserted \
         bit-identical per workload before timing is reported. The gate holds the live \
         merge-join {GATE_ID} leg at >= 1.0x the committed hash-join median on the baseline \
         host class. Reproduce with: cargo run --release -p dlo_bench --bin \
         arrange_guard.\",\n  \
         \"host\": {{\n    \"nproc\": {nproc},\n    \"dlo_engine_threads\": \"{knob}\"\n  }},\n  \
         \"gate_id\": \"{GATE_ID}\",\n  \
         \"best_arranged_speedup\": {best_speedup:.4},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        result_rows.join(",\n"),
    );
    json::parse(&report).expect("report round-trips through the in-tree parser");
    std::fs::write(&out_path, &report).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path}");

    // --- regression gate ----------------------------------------------------
    let Some(baseline) = baseline else {
        println!("no committed baseline at {baseline_path}: recorded fresh, gate skipped");
        return;
    };
    let baseline_nproc = baseline
        .get("host")
        .and_then(|h| h.get("nproc"))
        .and_then(|n| n.as_u64())
        .expect("baseline records host.nproc");
    let hash_median_ns = baseline
        .get("results")
        .and_then(|r| r.as_arr())
        .and_then(|rows| {
            rows.iter()
                .find(|row| row.get("id").and_then(|i| i.as_str()) == Some(GATE_ID))
        })
        .and_then(|row| row.get("hash_median_ns"))
        .and_then(|n| n.as_f64())
        .unwrap_or_else(|| panic!("baseline lacks a hash median for {GATE_ID}"));
    let gate_leg = &legs[0];
    let ratio = hash_median_ns / gate_leg.merge_best() as f64;
    println!(
        "{GATE_ID} gate: live merge best-of-{RUNS} {:.1}ms vs baseline hash median {:.1}ms \
         (x{ratio:.3}, floor x1.0)",
        gate_leg.merge_best() as f64 / 1e6,
        hash_median_ns / 1e6,
    );
    let strict = nproc as u64 == baseline_nproc;
    if ratio >= 1.0 {
        println!("merge-join TC holds the baseline envelope");
    } else if strict {
        eprintln!(
            "FAIL: merge-join {GATE_ID} fell below the committed hash-join median on the \
             baseline's host class (nproc={nproc})"
        );
        std::process::exit(1);
    } else {
        println!(
            "advisory only: host nproc={nproc} differs from baseline nproc={baseline_nproc}, \
             not failing"
        );
    }
}
