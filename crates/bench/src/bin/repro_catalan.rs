//! E9: Example 5.5 — the Catalan expansion of `f(x) = b ⊕ a·x²`
//! (eq. 33/35).
//!
//! Prints the coefficient of `aⁿ bⁿ⁺¹` in the formal iterate `f^(q)(0)`
//! for a grid of `(q, n)` and checks that the stabilized column equals the
//! Catalan numbers.

use dlo_bench::print_table;
use dlo_provenance::catalan::{catalan, iterate_coefficients};

fn main() {
    let mut ok = true;
    let max_n = 7u32;
    let max_q = (max_n + 2) as usize;

    let mut rows = vec![];
    for q in 0..=max_q {
        let coeffs = iterate_coefficients(q, max_n);
        let mut row = vec![format!("f^({q})(0)")];
        row.extend(coeffs.iter().map(|c| c.to_string()));
        rows.push(row);
    }
    let mut catalan_row = vec!["Catalan".to_string()];
    catalan_row.extend((0..=max_n as usize).map(|n| catalan(n).to_string()));
    rows.push(catalan_row);

    let headers: Vec<String> = std::iter::once("iterate".to_string())
        .chain((0..=max_n).map(|n| format!("a^{n}b^{}", n + 1)))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(
        "Example 5.5 — coefficients λ^(q)_n of a^n b^(n+1) in f^(q)(0), f(x) = b + a x²",
        &headers_ref,
        &rows,
    );

    // The paper's eq. (33): for q ≥ n+1, λ^(q)_n = C_n.
    let final_coeffs = iterate_coefficients(max_q, max_n);
    for (n, c) in final_coeffs.iter().enumerate() {
        ok &= *c == catalan(n);
    }
    println!("paper (eq. 33): stabilized coefficients are the Catalan numbers 1, 1, 2, 5, 14, 42, 132, 429, …");
    println!("{}", if ok { "REPRO OK" } else { "REPRO MISMATCH" });
    std::process::exit(if ok { 0 } else { 1 });
}
