//! E12/E13: Propositions 5.3 and 5.4 — stability sweeps.
//!
//! * `Trop⁺_p` is p-stable and tight: the unit `1_p` has stability index
//!   exactly `p` (sweep over p);
//! * `Trop⁺_{≤η}` is stable but not uniformly: singletons `{a}` have index
//!   `⌈η/a⌉`-ish, growing without bound as `a` shrinks.

use dlo_bench::print_table;
use dlo_pops::stability::element_stability_index;
use dlo_pops::{PreSemiring, TropEta, TropP};

fn trop_p_unit_index<const P: usize>() -> (usize, Option<usize>) {
    (P, element_stability_index(&TropP::<P>::one(), 200))
}

fn main() {
    let mut ok = true;

    // --- Proposition 5.3 ----------------------------------------------------
    let sweep = [
        trop_p_unit_index::<0>(),
        trop_p_unit_index::<1>(),
        trop_p_unit_index::<2>(),
        trop_p_unit_index::<3>(),
        trop_p_unit_index::<4>(),
        trop_p_unit_index::<5>(),
        trop_p_unit_index::<6>(),
        trop_p_unit_index::<8>(),
    ];
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|(p, ix)| {
            vec![
                format!("Trop+_{p}"),
                format!("{:?}", ix.unwrap()),
                p.to_string(),
            ]
        })
        .collect();
    print_table(
        "Prop. 5.3 — stability index of the unit 1_p over Trop+_p (tight: = p)",
        &["semiring", "measured index of 1_p", "paper"],
        &rows,
    );
    ok &= sweep.iter().all(|(p, ix)| ix == &Some(*p));

    // Random elements are also p-stable (sampled):
    const P: usize = 3;
    let mut seed = 0x5eed5eed5eed5eedu64;
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for _ in 0..200 {
        let costs: Vec<f64> = (0..rng() % 4).map(|_| (rng() % 20) as f64).collect();
        let u = TropP::<P>::from_costs(&costs);
        let ix = element_stability_index(&u, 100).expect("stable");
        ok &= ix <= P;
    }
    println!("200 random Trop+_3 elements: every stability index ≤ 3 — OK\n");

    // --- Proposition 5.4 ----------------------------------------------------
    const ETA: u64 = 720;
    let mut rows = vec![];
    let mut last = 0;
    for a in [720, 360, 240, 120, 60, 30, 10, 5, 2, 1] {
        let ix = element_stability_index(&TropEta::<ETA>::singleton(a), 100_000).unwrap();
        rows.push(vec![
            format!("{{{a}}}"),
            ix.to_string(),
            format!("{}", ETA.div_ceil(a)),
        ]);
        ok &= ix >= last;
        ok &= ix <= ((ETA / a) + 1) as usize;
        last = ix;
    }
    print_table(
        "Prop. 5.4 — Trop+_{<=720}: index of {a} grows without bound as a shrinks",
        &["element", "measured index", "⌈η/a⌉"],
        &rows,
    );
    ok &= last >= 700; // unbounded growth exhibited

    println!("{}", if ok { "REPRO OK" } else { "REPRO MISMATCH" });
    std::process::exit(if ok { 0 } else { 1 });
}
