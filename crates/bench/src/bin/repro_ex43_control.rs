//! E6: Example 4.3 — the company-control program.
//!
//! Runs over the single POPS `ℝ₊` with the monotone threshold indicator
//! `thr(v) = [v > 0.5]` bridging the share weights back into 0/1 control
//! facts (Sec. 4.5 "multiple value spaces"). The instance exercises
//! transitive control: `a` owns 60% of `b` directly; `a` plus the company
//! it controls own a majority of `c`; control of `d` stays below 50%.

use dlo_bench::print_table;
use dlo_core::examples_lib::company_control;
use dlo_core::{naive_eval, tup};

fn main() {
    let mut ok = true;
    let companies = ["a", "b", "c", "d"];
    // Share matrix S(x, y) = fraction of y owned by x.
    let shares = [
        ("a", "b", 0.6), // a controls b outright
        ("a", "c", 0.3), // a alone is short of c …
        ("b", "c", 0.3), // … but a+b clears 0.5
        ("a", "d", 0.2),
        ("b", "d", 0.2),  // a+b reach only 0.4 of d
        ("c", "d", 0.05), // even with c: 0.45 < 0.5
    ];
    let (prog, pops, bools) = company_control(&companies, &shares);
    let out = naive_eval(&prog, &pops, &bools, 1000).unwrap();
    let t = out.get("T").unwrap();

    let mut rows = vec![];
    let mut control = vec![];
    for x in companies {
        for y in companies {
            let v = t.get(&tup![x, y]);
            if !dlo_pops::Pops::is_bottom(&v) {
                let controls = v.get() > 0.5;
                rows.push(vec![
                    format!("T({x}, {y})"),
                    format!("{:.2}", v.get()),
                    format!("{}", controls),
                ]);
                if controls {
                    control.push((x, y));
                }
            }
        }
    }
    print_table(
        "Example 4.3 — total shares T(x,y) and control C(x,y) = [T > 0.5]",
        &["atom", "shares", "controls"],
        &rows,
    );

    // Expected control relation: a controls b (0.6) and c (0.3 + 0.3).
    ok &= control == vec![("a", "b"), ("a", "c")];
    println!("paper semantics: C = {{(a,b), (a,c)}}; d is controlled by nobody");
    println!("{}", if ok { "REPRO OK" } else { "REPRO MISMATCH" });
    std::process::exit(if ok { 0 } else { 1 });
}
