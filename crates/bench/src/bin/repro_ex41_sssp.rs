//! E1–E4: Example 4.1 — one program, four POPS (Fig. 2(a) graph).
//!
//! Reproduces the paper's SSSP iteration table over `Trop⁺`, the Boolean
//! reachability reading, the two-shortest-paths bags over `Trop⁺₁`, and
//! the within-η set over `Trop⁺_{≤η}`.

use dlo_bench::print_table;
use dlo_core::examples_lib as ex;
use dlo_core::tup;
use dlo_core::{ground, naive_eval, naive_eval_trace, BoolDatabase};
use dlo_pops::{Bool, PreSemiring, Trop, TropEta, TropP};

fn main() {
    let mut ok = true;

    // --- Trop⁺: the paper's 6-row table -----------------------------------
    let (program, edb) = ex::sssp_trop("a");
    let sys = ground(&program, &edb, &BoolDatabase::new());
    let trace = naive_eval_trace(&sys, 100);
    println!("Example 4.1 over Trop+ (min, +) — naive trace, Fig. 2(a) graph\n");
    print!("{}", trace.render());
    println!(
        "(the paper prints the confirming row L(5) = L(4) as well; the\n stability index per the Sec. 4 definition is {})\n",
        trace.iterates.len() - 1
    );
    let last = trace.iterates.last().unwrap();
    let expect = [("a", 0.0), ("b", 1.0), ("c", 4.0), ("d", 8.0)];
    for (n, d) in expect {
        let ix = sys.index[&dlo_core::GroundAtom::new("L", tup![n])];
        ok &= last[ix] == Trop::finite(d);
    }
    ok &= trace.iterates.len() == 5; // L(0)..L(4)

    // --- 𝔹: reachability ---------------------------------------------------
    let program_b: dlo_core::Program<Bool> = ex::single_source_program("a");
    let edb_b = ex::fig2a_graph(|_| Bool(true));
    let out_b = naive_eval(&program_b, &edb_b, &BoolDatabase::new(), 100).unwrap();
    let rows: Vec<Vec<String>> = ["a", "b", "c", "d"]
        .iter()
        .map(|n| {
            vec![
                format!("L({n})"),
                format!("{}", !out_b.get("L").unwrap().get(&tup![*n]).is_zero()),
            ]
        })
        .collect();
    print_table(
        "Example 4.1 over B — reachability from a",
        &["atom", "value"],
        &rows,
    );
    ok &= (0..4).all(|i| rows[i][1] == "true");

    // --- Trop⁺₁: two shortest paths ---------------------------------------
    let program_p: dlo_core::Program<TropP<1>> = ex::single_source_program("a");
    let edb_p = ex::fig2a_graph(|w| TropP::<1>::from_costs(&[w]));
    let out_p = naive_eval(&program_p, &edb_p, &BoolDatabase::new(), 100).unwrap();
    let expect_p = [
        ("a", vec![0.0, 3.0]),
        ("b", vec![1.0, 4.0]),
        ("c", vec![4.0, 5.0]),
        ("d", vec![8.0, 9.0]),
    ];
    let mut rows = vec![];
    for (n, bag) in &expect_p {
        let got = out_p.get("L").unwrap().get(&tup![*n]);
        let want = TropP::<1>::from_costs(bag);
        rows.push(vec![
            format!("L({n})"),
            format!("{:?}", got.costs()),
            format!("{:?}", want.costs()),
        ]);
        ok &= got == want;
    }
    print_table(
        "Example 4.1 over Trop+_1 — two shortest path lengths (paper: {{0,3}}, {{1,4}}, {{4,5}}, {{8,9}})",
        &["atom", "computed", "paper"],
        &rows,
    );

    // --- Trop⁺_{≤η}: all lengths within η of the shortest ------------------
    type TE = TropEta<4>;
    let program_e: dlo_core::Program<TE> = ex::single_source_program("a");
    let edb_e = ex::fig2a_graph(|w| TE::singleton(w as u64));
    let out_e = naive_eval(&program_e, &edb_e, &BoolDatabase::new(), 100).unwrap();
    let mut rows = vec![];
    for n in ["a", "b", "c", "d"] {
        let got = out_e.get("L").unwrap().get(&tup![n]);
        rows.push(vec![
            format!("L({n})"),
            format!("{:?}", got.costs().collect::<Vec<_>>()),
        ]);
    }
    print_table(
        "Example 4.1 over Trop+_{<=4} — path lengths within 4 of the shortest",
        &["atom", "lengths"],
        &rows,
    );
    // a: {0, 3} (the a→b→c→d→b… cycle back to a does not exist; 3 = a→?).
    // Check the defining property against the Trop answer instead:
    for (n, d) in expect {
        let set = out_e.get("L").unwrap().get(&tup![n]);
        ok &= set.min_cost() == d as u64;
        ok &= set.costs().all(|c| c <= d as u64 + 4);
    }

    println!("{}", if ok { "REPRO OK" } else { "REPRO MISMATCH" });
    std::process::exit(if ok { 0 } else { 1 });
}
