//! Extension experiment: Newton's method vs (semi-)naïve iteration.
//!
//! The paper's introduction: "Newton's method requires a smaller number of
//! iterations than the naïve algorithm … \[but\] every iteration … is
//! expensive … One experimental evaluation \[69\] has found that it is not
//! \[more efficient\]." This harness reproduces exactly that shape:
//! iteration counts collapse under Newton, wall-clock does not.

use dlo_bench::{print_table, GraphInstance};
use dlo_core::{
    ground_sparse, naive_eval_system, seminaive_eval_system, BoolDatabase, EvalOutcome,
};
use dlo_pops::{Bool, Trop};
use dlo_semilin::newton_lfp;
use std::time::Instant;

fn main() {
    let mut ok = true;
    let mut rows = vec![];

    let mut run = |name: &str, sys: &dlo_core::GroundSystem<Trop>| {
        let t0 = Instant::now();
        let EvalOutcome::Converged { output, steps, .. } = naive_eval_system(sys, 100_000) else {
            ok = false;
            return;
        };
        let naive_t = t0.elapsed();
        let t0 = Instant::now();
        let (semi, stats) = seminaive_eval_system(sys, 100_000);
        let semi_t = t0.elapsed();
        let t0 = Instant::now();
        let Some((nv, nit)) = newton_lfp(sys, 1000) else {
            ok = false;
            return;
        };
        let newton_t = t0.elapsed();
        ok &= semi.unwrap() == output;
        ok &= sys.to_database(&nv) == output;
        ok &= nit <= steps;
        rows.push(vec![
            name.to_string(),
            sys.num_vars().to_string(),
            format!("{steps} it / {naive_t:.1?}"),
            format!("{} it / {semi_t:.1?}", stats.iterations),
            format!("{nit} it / {newton_t:.1?}"),
        ]);
    };

    for (name, g) in [
        ("sssp path(48)", GraphInstance::path(48)),
        ("sssp grid(7)", GraphInstance::grid(7)),
        ("sssp random(64)", GraphInstance::random(64, 256, 9, 77)),
    ] {
        let (prog, edb) = g.sssp();
        let sys = ground_sparse(&prog, &edb, &BoolDatabase::new());
        run(name, &sys);
    }

    print_table(
        "Newton vs naive vs semi-naive over Trop+ (iterations / wall time)",
        &["workload", "N", "naive", "semi-naive", "newton"],
        &rows,
    );

    // Quadratic Boolean TC: Newton needs very few outer iterations even on
    // a non-linear system.
    let edges: Vec<(String, String)> = (0..14)
        .map(|i| (format!("n{i}"), format!("n{}", i + 1)))
        .collect();
    let er: Vec<(&str, &str)> = edges
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    let (prog, edb) = dlo_core::examples_lib::quadratic_tc_bool(&er);
    let sys = ground_sparse(&prog, &edb, &BoolDatabase::new());
    let EvalOutcome::Converged { output, steps, .. } = naive_eval_system(&sys, 100_000) else {
        panic!()
    };
    let (nv, nit) = newton_lfp(&sys, 1000).unwrap();
    ok &= sys.to_database(&nv) == output;
    println!(
        "quadratic boolean TC on path(15): naive {steps} iterations, Newton {nit} (Esparza et al.: ≤ N = {})",
        sys.num_vars()
    );
    ok &= nit <= sys.num_vars();
    let _ = Bool(true);

    println!("\npaper's expectation: Newton uses fewer iterations but is not faster in practice —\ncompare the wall times above.");
    println!("\n{}", if ok { "REPRO OK" } else { "REPRO MISMATCH" });
    std::process::exit(if ok { 0 } else { 1 });
}
