//! CI guard for the always-on telemetry (PR 6): re-runs the baseline's
//! `worklist_tc1k/worklist_trop/chain` leg with stats collection live
//! and holds the wall-clock within 5% of the committed
//! `BENCH_worklist.json` median, then runs the same workload **traced**
//! and validates every JSONL line with the in-tree parser.
//!
//! The timing gate is **strict only when the host matches the
//! baseline's recorded `host.nproc`** (the committed numbers come from
//! a single-core container); on any other machine the comparison is
//! advisory — printed, never failing — because cross-host medians mean
//! nothing. The JSONL validation is strict everywhere.
//!
//! Usage (from the repo root, as CI does):
//!
//! ```console
//! $ cargo run --release -p dlo_bench --bin telemetry_guard -- \
//!       [BENCH_worklist.json] [telemetry_trace.jsonl]
//! ```

use dlo_bench::{host_metadata, print_host_note, GraphInstance};
use dlo_core::eval::stats::json;
use dlo_core::examples_lib::apsp_program;
use dlo_core::BoolDatabase;
use dlo_engine::{
    engine_eval_interned, EngineOpts, InternedOutcome, JsonlSink, Strategy, TraceHandle,
};
use dlo_pops::Trop;
use std::time::Instant;

/// The baseline leg the guard re-measures: FIFO worklist on the
/// 1000-node unit chain over Trop.
const BASELINE_ID: &str = "worklist_tc1k/worklist_trop/chain";

/// Allowed slowdown of the instrumented run over the recorded median.
const MARGIN: f64 = 1.05;

/// Timed runs; the best one is compared (criterion-style min-of-N
/// absorbs scheduler noise on a shared runner).
const RUNS: usize = 3;

fn run_once(opts: &EngineOpts) -> (u64, dlo_engine::EvalStats) {
    let program = apsp_program::<Trop>();
    let edb = GraphInstance::path(1000).trop_edb();
    let bools = BoolDatabase::new();
    let t = Instant::now();
    let out = engine_eval_interned(
        &program,
        &edb,
        &bools,
        100_000_000,
        Strategy::Worklist,
        opts,
    )
    .expect("compiles");
    let elapsed = t.elapsed().as_nanos() as u64;
    assert!(
        matches!(out, InternedOutcome::Converged { .. }),
        "tc_chain_1k must converge"
    );
    (elapsed, out.stats().clone())
}

fn main() {
    print_host_note();
    let mut args = std::env::args().skip(1);
    let baseline_path = args.next().unwrap_or_else(|| "BENCH_worklist.json".into());
    let trace_path = args
        .next()
        .unwrap_or_else(|| "telemetry_trace.jsonl".into());

    // --- baseline ----------------------------------------------------------
    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("cannot read {baseline_path}: {e}"));
    let baseline = json::parse(&text).expect("baseline JSON parses");
    let baseline_nproc = baseline
        .get("host")
        .and_then(|h| h.get("nproc"))
        .and_then(|n| n.as_u64())
        .expect("baseline records host.nproc");
    let median_ns = baseline
        .get("results")
        .and_then(|r| r.as_arr())
        .and_then(|rows| {
            rows.iter()
                .find(|row| row.get("id").and_then(|i| i.as_str()) == Some(BASELINE_ID))
        })
        .and_then(|row| row.get("median_ns"))
        .and_then(|n| n.as_f64())
        .unwrap_or_else(|| panic!("baseline lacks a median for {BASELINE_ID}"));

    // --- traced run: the JSONL stream must be valid -------------------------
    let _ = std::fs::remove_file(&trace_path);
    let sink = JsonlSink::create(std::path::Path::new(&trace_path)).expect("trace file");
    let traced_opts = EngineOpts {
        trace: Some(TraceHandle::new(sink)),
        ..EngineOpts::default()
    };
    let (_, traced_stats) = run_once(&traced_opts);
    drop(traced_opts);
    let trace = std::fs::read_to_string(&trace_path).expect("trace written");
    let mut kinds = vec![];
    for line in trace.lines().filter(|l| !l.is_empty()) {
        let event = json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        kinds.push(
            event
                .get("event")
                .and_then(|e| e.as_str())
                .expect("tagged event")
                .to_string(),
        );
    }
    assert_eq!(kinds.first().map(String::as_str), Some("run_start"));
    assert_eq!(kinds.last().map(String::as_str), Some("run_end"));
    let iterations = kinds.iter().filter(|k| *k == "iteration").count();
    assert_eq!(
        iterations,
        traced_stats.iterations.len(),
        "one iteration event per recorded snapshot"
    );
    println!(
        "trace ok: {} events ({} iterations) in {trace_path}, all lines parse",
        kinds.len(),
        iterations
    );

    // --- overhead gate ------------------------------------------------------
    let opts = EngineOpts::default();
    let best_ns = (0..RUNS).map(|_| run_once(&opts).0).min().unwrap();
    let limit_ns = median_ns * MARGIN;
    let ratio = best_ns as f64 / median_ns;
    let (nproc, _) = host_metadata();
    let strict = nproc as u64 == baseline_nproc;
    println!(
        "{BASELINE_ID}: best-of-{RUNS} {:.1}ms vs baseline median {:.1}ms (x{ratio:.3}, limit x{MARGIN})",
        best_ns as f64 / 1e6,
        median_ns / 1e6,
    );
    if (best_ns as f64) <= limit_ns {
        println!("telemetry overhead within budget");
    } else if strict {
        eprintln!(
            "FAIL: instrumented run exceeds the baseline envelope on the baseline's host class \
             (nproc={nproc})"
        );
        std::process::exit(1);
    } else {
        println!(
            "advisory only: host nproc={nproc} differs from baseline nproc={baseline_nproc}, \
             not failing"
        );
    }
}
