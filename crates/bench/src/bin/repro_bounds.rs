//! E15/E16: Theorem 1.2 / 5.12 / Corollaries 5.18, 5.19 — measured
//! convergence steps vs the paper's bounds.
//!
//! * random linear and quadratic programs over `Trop⁺_p`: measured naïve
//!   steps never exceed `Σ_{i≤N}(p+1)^i` (linear) / `Σ(p+2)^i` (general);
//! * 0-stable POPS (`Trop⁺`, `𝔹`): measured steps ≤ N (Cor. 5.19), with a
//!   steps-vs-N series on paths (where the bound is tight-ish).

use dlo_bench::{print_table, GraphInstance};
use dlo_core::{ground_sparse, naive_eval_system, EvalOutcome};
use dlo_fixpoint::{general_bound, linear_bound, zero_stable_bound};
use dlo_pops::{Bool, TropP};

fn main() {
    let mut ok = true;

    // --- Trop+_p linear: SSSP programs -------------------------------------
    const P: usize = 1;
    let mut rows = vec![];
    for (kind, g) in [
        ("path(6)", GraphInstance::path(6)),
        ("cycle(5)", GraphInstance::cycle(5)),
        ("random(8,20)", GraphInstance::random(8, 20, 9, 11)),
        ("grid(3)", GraphInstance::grid(3)),
    ] {
        let prog = dlo_bench::single_source_int_program::<TropP<P>>(0);
        let mut edb = dlo_core::Database::<TropP<P>>::new();
        edb.insert(
            "E",
            dlo_core::Relation::from_pairs(
                2,
                g.edges
                    .iter()
                    .map(|&(u, v, w)| (vec![g.node(u), g.node(v)], TropP::<P>::from_costs(&[w]))),
            ),
        );
        let sys = ground_sparse(&prog, &edb, &dlo_core::BoolDatabase::new());
        let n = sys.num_vars();
        match naive_eval_system(&sys, 1_000_000) {
            EvalOutcome::Converged { steps, .. } => {
                let bound = linear_bound(P, n);
                rows.push(vec![
                    kind.into(),
                    n.to_string(),
                    steps.to_string(),
                    bound.to_string(),
                ]);
                ok &= (steps as u128) <= bound;
            }
            _ => ok = false,
        }
    }
    print_table(
        "Thm 5.12 (linear) — SSSP over Trop+_1: steps vs Σ(p+1)^i bound",
        &["graph", "N", "steps", "bound"],
        &rows,
    );

    // --- Trop+_p quadratic: TC via T(x,z)·T(z,y) ----------------------------
    let mut rows = vec![];
    for (kind, g) in [
        ("path(4)", GraphInstance::path(4)),
        ("cycle(4)", GraphInstance::cycle(4)),
    ] {
        let prog = dlo_core::examples_lib::quadratic_tc_program::<TropP<P>>();
        let mut edb = dlo_core::Database::<TropP<P>>::new();
        edb.insert(
            "E",
            dlo_core::Relation::from_pairs(
                2,
                g.edges
                    .iter()
                    .map(|&(u, v, w)| (vec![g.node(u), g.node(v)], TropP::<P>::from_costs(&[w]))),
            ),
        );
        let sys = ground_sparse(&prog, &edb, &dlo_core::BoolDatabase::new());
        let n = sys.num_vars();
        match naive_eval_system(&sys, 1_000_000) {
            EvalOutcome::Converged { steps, .. } => {
                let bound = general_bound(P, n);
                rows.push(vec![
                    kind.into(),
                    n.to_string(),
                    steps.to_string(),
                    format!("{bound:.2e}"),
                ]);
                ok &= (steps as u128) <= bound;
            }
            _ => ok = false,
        }
    }
    print_table(
        "Thm 5.12 (general) — quadratic TC over Trop+_1: steps vs Σ(p+2)^i",
        &["graph", "N", "steps", "bound"],
        &rows,
    );

    // --- Corollary 5.19: 0-stable ⇒ ≤ N steps; series over path length -----
    let mut rows = vec![];
    for n in [4usize, 8, 16, 32, 64] {
        let g = GraphInstance::path(n);
        let (prog, edb) = g.sssp();
        let sys = ground_sparse(&prog, &edb, &dlo_core::BoolDatabase::new());
        let vars = sys.num_vars();
        match naive_eval_system(&sys, 1_000_000) {
            EvalOutcome::Converged { steps, .. } => {
                ok &= (steps as u128) <= zero_stable_bound(vars);
                // Paths make the bound nearly tight: steps = n.
                rows.push(vec![
                    format!("path({n})"),
                    vars.to_string(),
                    steps.to_string(),
                    vars.to_string(),
                ]);
                ok &= steps + 1 >= vars; // tightness on paths
            }
            _ => ok = false,
        }
    }
    // Boolean quadratic TC also obeys N (squaring converges much faster —
    // logarithmically on paths).
    for n in [8usize, 16] {
        let edges: Vec<(String, String)> = (0..n - 1)
            .map(|i| (format!("v{i}"), format!("v{}", i + 1)))
            .collect();
        let edge_refs: Vec<(&str, &str)> = edges
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        let (prog, edb) = dlo_core::examples_lib::quadratic_tc_bool(&edge_refs);
        let sys = ground_sparse(&prog, &edb, &dlo_core::BoolDatabase::new());
        match naive_eval_system(&sys, 1_000_000) {
            EvalOutcome::Converged { steps, .. } => {
                let vars = sys.num_vars();
                ok &= (steps as u128) <= zero_stable_bound(vars);
                rows.push(vec![
                    format!("bool-TC² path({n})"),
                    vars.to_string(),
                    steps.to_string(),
                    vars.to_string(),
                ]);
                let _ = Bool(true);
            }
            _ => ok = false,
        }
    }
    print_table(
        "Cor. 5.19 — 0-stable: measured steps ≤ N (paths nearly tight; squaring TC far below)",
        &["workload", "N", "steps", "bound N"],
        &rows,
    );

    println!("{}", if ok { "REPRO OK" } else { "REPRO MISMATCH" });
    std::process::exit(if ok { 0 } else { 1 });
}
