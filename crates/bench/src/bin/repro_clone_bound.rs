//! E19/E28: Theorem 3.4 and Lemma 3.3 — composed stability bounds.
//!
//! * measures the stability index of coupled counter systems over products
//!   of chains and compares against `E_n(p₁..p_n) = Σ_k Π_{i≤k} pᵢ`;
//! * verifies the nested fixpoint schedule (Fig. 1) computes the same lfp
//!   as direct product iteration, within Lemma 3.3's `pq + p + q` bound.

use dlo_bench::print_table;
use dlo_fixpoint::{clone_bound, nested_lfp, product_lfp, Outcome};

/// A coupled cascade on chains {0..p₁} × {0..p₂} × … — each component
/// increments only while dominated by its predecessor's progress, which
/// drags convergence out without violating monotonicity.
fn cascade(ps: &[usize]) -> impl Fn(&Vec<usize>) -> Vec<usize> + '_ {
    move |x: &Vec<usize>| {
        let mut next = x.clone();
        for i in 0..ps.len() {
            let gate = if i == 0 {
                // First component free-runs.
                x[i] + 1
            } else if x[i] < x[i - 1] {
                // Later components chase their predecessor.
                x[i] + 1
            } else {
                x[i]
            };
            next[i] = gate.min(ps[i]);
        }
        next
    }
}

fn measure(ps: &[usize]) -> usize {
    let f = cascade(ps);
    let bottom = vec![0usize; ps.len()];
    match dlo_fixpoint::naive_lfp(f, bottom, 1_000_000) {
        Outcome::Converged { steps, .. } => steps,
        Outcome::Diverged { .. } => usize::MAX,
    }
}

fn main() {
    let mut ok = true;

    let mut rows = vec![];
    for ps in [
        vec![3usize],
        vec![3, 3],
        vec![4, 2],
        vec![4, 3, 2],
        vec![5, 5, 5],
        vec![2, 2, 2, 2],
    ] {
        let steps = measure(&ps);
        let bound = clone_bound(&ps);
        ok &= (steps as u128) <= bound;
        rows.push(vec![
            format!("{ps:?}"),
            steps.to_string(),
            bound.to_string(),
        ]);
    }
    print_table(
        "Thm 3.4 — cascade systems on chain products: measured index ≤ E_n(p₁..p_n)",
        &["chain heights", "measured", "E_n bound"],
        &rows,
    );

    // Lemma 3.3: nested schedule = direct product lfp, and the direct index
    // obeys pq + p + q.
    let f = |x: &u32, y: &u32| (*x + u32::from(*y == 3)).min(5);
    let g = |_x: &u32, y: &u32| (*y + 1).min(3);
    let nested = nested_lfp(f, g, 0u32, 0u32, 10_000).expect("converges");
    match product_lfp(f, g, 0u32, 0u32, 10_000) {
        Outcome::Converged { value, steps } => {
            ok &= value == (nested.x, nested.y);
            let (p, q) = (5usize, 3usize);
            ok &= steps <= p * q + p + q;
            println!(
                "Lemma 3.3 — nested lfp {:?} == product lfp {:?}; product index {} ≤ pq+p+q = {}\n",
                (nested.x, nested.y),
                value,
                steps,
                p * q + p + q
            );
        }
        _ => ok = false,
    }

    println!("{}", if ok { "REPRO OK" } else { "REPRO MISMATCH" });
    std::process::exit(if ok { 0 } else { 1 });
}
