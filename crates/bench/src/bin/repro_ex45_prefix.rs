//! E7: Sec. 4.5 extensions — case statements, interpreted key functions,
//! and keys-to-values.
//!
//! * prefix sums via `W(i) :- case i = 0 : V(0); i < n : W(i-1) + V(i)`;
//! * `ShortestLength(x,y) :- min_c ([Length(x,y,c)] + c)` where the key
//!   `c` becomes a tropical value.

use dlo_bench::print_table;
use dlo_core::examples_lib::{prefix_sum, shortest_length};
use dlo_core::{naive_eval, tup, BoolDatabase};
use dlo_pops::lifted::lreal;
use dlo_pops::Trop;

fn main() {
    let mut ok = true;

    // --- prefix sums --------------------------------------------------------
    let values = [2.0, 4.0, 1.5, 3.0, 0.5];
    let (prog, edb) = prefix_sum(&values);
    let out = naive_eval(&prog, &edb, &BoolDatabase::new(), 1000).unwrap();
    let w = out.get("W").unwrap();
    let mut rows = vec![];
    let mut acc = 0.0;
    for (i, v) in values.iter().enumerate() {
        acc += v;
        let got = w.get(&tup![i as i64]);
        rows.push(vec![
            format!("W({i})"),
            format!("{got:?}"),
            format!("{acc}"),
        ]);
        ok &= got == lreal(acc);
    }
    print_table(
        "Sec. 4.5 — prefix sums by case statement + key function i-1",
        &["atom", "computed", "expected"],
        &rows,
    );

    // --- keys to values -----------------------------------------------------
    let lengths = [("a", "b", 3), ("a", "b", 7), ("a", "c", 5), ("b", "c", 2)];
    let (prog, edb) = shortest_length(&lengths);
    let out = naive_eval(&prog, &edb, &BoolDatabase::new(), 100).unwrap();
    let sl = out.get("ShortestLength").unwrap();
    let expect = [("a", "b", 3.0), ("a", "c", 5.0), ("b", "c", 2.0)];
    let mut rows = vec![];
    for (x, y, d) in expect {
        let got = sl.get(&tup![x, y]);
        rows.push(vec![
            format!("ShortestLength({x}, {y})"),
            format!("{got:?}"),
            format!("{d}"),
        ]);
        ok &= got == Trop::finite(d);
    }
    print_table(
        "Sec. 4.5 — keys to values: ShortestLength over Trop+",
        &["atom", "computed", "expected"],
        &rows,
    );

    println!("{}", if ok { "REPRO OK" } else { "REPRO MISMATCH" });
    std::process::exit(if ok { 0 } else { 1 });
}
