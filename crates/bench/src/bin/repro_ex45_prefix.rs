//! E7: Sec. 4.5 extensions — case statements, interpreted key functions,
//! and keys-to-values.
//!
//! * prefix sums via `W(i) :- case i = 0 : V(0); i < n : W(i-1) + V(i)`;
//! * the same prefix computation in *head-keyed* form
//!   (`W(i+1) :- W(i) ⊗ V(i+1)`) running **natively on the execution
//!   engine** — head key functions no longer route around `dlo_engine`;
//! * `ShortestLength(x,y) :- min_c ([Length(x,y,c)] + c)` where the key
//!   `c` becomes a tropical value.

use dlo_bench::{print_host_note, print_table};
use dlo_core::examples_lib::{prefix_sum, prefix_sum_keyed, shortest_length};
use dlo_core::{naive_eval, relational_seminaive_eval, tup, BoolDatabase};
use dlo_engine::engine_seminaive_eval;
use dlo_pops::lifted::lreal;
use dlo_pops::Trop;

fn ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

fn main() {
    print_host_note();
    let mut ok = true;

    // --- prefix sums --------------------------------------------------------
    let values = [2.0, 4.0, 1.5, 3.0, 0.5];
    let (prog, edb) = prefix_sum(&values);
    let out = naive_eval(&prog, &edb, &BoolDatabase::new(), 1000).unwrap();
    let w = out.get("W").unwrap();
    let mut rows = vec![];
    let mut acc = 0.0;
    for (i, v) in values.iter().enumerate() {
        acc += v;
        let got = w.get(&tup![i as i64]);
        rows.push(vec![
            format!("W({i})"),
            format!("{got:?}"),
            format!("{acc}"),
        ]);
        ok &= got == lreal(acc);
    }
    print_table(
        "Sec. 4.5 — prefix sums by case statement + key function i-1",
        &["atom", "computed", "expected"],
        &rows,
    );

    // --- head-keyed prefix, natively on the engine --------------------------
    // Over Trop⁺ every key has exactly one derivation, so ⊗ = + gives the
    // same prefix sums; the engine mints the head-computed keys i+1 via
    // its dynamic interner and must agree with the relational backend.
    let (prog, edb) = prefix_sum_keyed::<Trop>(&values, Trop::finite);
    let eng_out = engine_seminaive_eval(&prog, &edb, &BoolDatabase::new(), 1000).expect("compiles");
    let stats = eng_out.stats().clone();
    let eng = eng_out.unwrap();
    let rel = relational_seminaive_eval(&prog, &edb, &BoolDatabase::new(), 1000).unwrap();
    ok &= eng == rel;
    let w = eng.get("W").unwrap();
    let mut rows = vec![];
    let mut acc = 0.0;
    for (i, v) in values.iter().enumerate() {
        acc += v;
        let got = w.get(&tup![i as i64]);
        rows.push(vec![
            format!("W({i})"),
            format!("{got:?}"),
            format!("{acc}"),
        ]);
        ok &= got == Trop::finite(acc);
    }
    print_table(
        "Sec. 4.5 — head-keyed prefix W(i+1) :- W(i) * V(i+1), dlo_engine native",
        &["atom", "engine", "expected"],
        &rows,
    );
    // The engine leg's telemetry. The head-computed keys i+1 all land
    // inside V's already-interned domain here, so `minted` stays 0 —
    // genuinely fresh head-derived constants would surface there.
    print_table(
        "engine leg telemetry (per-phase ms from EvalStats)",
        &[
            "strategy",
            "setup_ms",
            "index_ms",
            "eval_ms",
            "mint_ms",
            "decode_ms",
            "steps",
            "emits",
            "merges",
            "minted",
        ],
        &[vec![
            stats.strategy.clone(),
            ms(stats.phases.setup),
            ms(stats.phases.edb_index),
            ms(stats.phases.eval),
            ms(stats.phases.mint),
            ms(stats.phases.decode),
            format!("{}", stats.steps),
            format!("{}", stats.counters.emits + stats.counters.fresh_emits),
            format!(
                "{}",
                stats.counters.rows_inserted
                    + stats.counters.rows_improved
                    + stats.counters.merges_absorbed
            ),
            format!("{}", stats.counters.minted_ids),
        ]],
    );

    // --- keys to values -----------------------------------------------------
    let lengths = [("a", "b", 3), ("a", "b", 7), ("a", "c", 5), ("b", "c", 2)];
    let (prog, edb) = shortest_length(&lengths);
    let out = naive_eval(&prog, &edb, &BoolDatabase::new(), 100).unwrap();
    let sl = out.get("ShortestLength").unwrap();
    let expect = [("a", "b", 3.0), ("a", "c", 5.0), ("b", "c", 2.0)];
    let mut rows = vec![];
    for (x, y, d) in expect {
        let got = sl.get(&tup![x, y]);
        rows.push(vec![
            format!("ShortestLength({x}, {y})"),
            format!("{got:?}"),
            format!("{d}"),
        ]);
        ok &= got == Trop::finite(d);
    }
    print_table(
        "Sec. 4.5 — keys to values: ShortestLength over Trop+",
        &["atom", "computed", "expected"],
        &rows,
    );

    println!("{}", if ok { "REPRO OK" } else { "REPRO MISMATCH" });
    std::process::exit(if ok { 0 } else { 1 });
}
