//! Demand-driven (magic-set) evaluation vs full fixpoints
//! (`dlo_engine::query` vs the classic entry points):
//!
//! * `magic_sssp` — a **single-source** question against the
//!   **all-pairs** shortest-path program, on the 1000-node unit chain
//!   and the 800-node gradient graph: `eval_frontier_query`'s rewrite
//!   restricts the priority frontier to one source (O(n) demanded
//!   rows), where the full run settles all Θ(n²) pairs. This is the
//!   acceptance-criterion pair: query ≥ 5× faster than full.
//! * `magic_bom` — point bill-of-material lookups on a 24-tree subpart
//!   forest: demand touches one tree in 24.
//! * `magic_company` — company control over ℝ₊ (naturally ordered, no
//!   `⊖`, not absorptive: naive loop only — and the POPS where the
//!   set-valued magic clamp is load-bearing) for **one** company vs
//!   all companies.
//!
//! Ends with a full-vs-query speedup table on stdout (min of
//! `TABLE_REPS` timed runs per cell).
//!
//! Recorded baseline: `BENCH_magic.json` (reproduce with
//! `CRITERION_SAMPLES=3 CRITERION_JSON=out.jsonl cargo bench -p
//! dlo_bench --bench magic_sets`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlo_bench::{bom_forest, bom_forest_root, print_host_note, print_table, GraphInstance};
use dlo_core::examples_lib::{apsp_program, company_control};
use dlo_core::query::{Query, QueryArg};
use dlo_core::{BoolDatabase, Database};
use dlo_engine::{
    engine_eval_with_opts, engine_naive_eval_with_opts, engine_query_eval_with_opts,
    engine_query_naive_eval, engine_query_seminaive_eval, engine_seminaive_eval_with_opts,
    EngineOpts, Strategy,
};
use dlo_pops::{NNReal, Trop};
use std::time::Instant;

const CAP: usize = 100_000_000;
const TABLE_REPS: usize = 3;

fn single_source_query() -> Query {
    Query::new("T", vec![QueryArg::bound(0i64), QueryArg::Free])
}

/// The company-control chain over ℝ₊: c0 controls c1 controls … —
/// `S(cᵢ, cᵢ₊₁) = 0.75` plus minority stakes two steps down.
fn company_chain(n: usize) -> (dlo_core::Program<NNReal>, Database<NNReal>, BoolDatabase) {
    let names: Vec<String> = (0..n).map(|i| format!("c{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let mut shares: Vec<(&str, &str, f64)> = vec![];
    for i in 0..n - 1 {
        shares.push((name_refs[i], name_refs[i + 1], 0.75));
        if i + 2 < n {
            shares.push((name_refs[i], name_refs[i + 2], 0.25));
        }
    }
    company_control(&name_refs, &shares)
}

fn bench_magic_sssp(c: &mut Criterion) {
    print_host_note();
    let bools = BoolDatabase::new();
    let opts = EngineOpts::default();
    let prog = apsp_program::<Trop>();
    let q = single_source_query();

    // Cross-check once per instance: query answers equal the full
    // restriction.
    for g in [GraphInstance::path(64), GraphInstance::gradient(64)] {
        let edb = g.trop_edb();
        let full = engine_eval_with_opts(&prog, &edb, &bools, CAP, Strategy::Priority, &opts)
            .expect("compiles")
            .unwrap();
        let qa =
            engine_query_eval_with_opts(&prog, &q, &edb, &bools, CAP, Strategy::Priority, &opts)
                .expect("compiles");
        assert_eq!(q.restrict(full.get("T").unwrap()), qa.answers());
    }

    for (name, g) in [
        ("chain1k", GraphInstance::path(1000)),
        ("gradient800", GraphInstance::gradient(800)),
    ] {
        let edb = g.trop_edb();
        let group_name = format!("magic_sssp_{name}");
        let mut group = c.benchmark_group(&group_name);
        group.bench_with_input(
            BenchmarkId::new("full_priority", "allpairs"),
            &(),
            |b, ()| {
                b.iter(|| {
                    engine_eval_with_opts(
                        std::hint::black_box(&prog),
                        &edb,
                        &bools,
                        CAP,
                        Strategy::Priority,
                        &opts,
                    )
                    .expect("compiles")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("query_frontier", "source0"),
            &(),
            |b, ()| {
                b.iter(|| {
                    engine_query_eval_with_opts(
                        std::hint::black_box(&prog),
                        &q,
                        &edb,
                        &bools,
                        CAP,
                        Strategy::Priority,
                        &opts,
                    )
                    .expect("compiles")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("query_seminaive", "source0"),
            &(),
            |b, ()| {
                b.iter(|| {
                    engine_query_seminaive_eval(
                        std::hint::black_box(&prog),
                        &q,
                        &edb,
                        &bools,
                        CAP,
                        &opts,
                    )
                    .expect("compiles")
                })
            },
        );
        group.finish();
    }
}

fn bench_magic_bom(c: &mut Criterion) {
    let opts = EngineOpts::default();
    let (prog, pops, bools) = bom_forest(24, 6, 3);
    let q = Query::point("T", vec![bom_forest_root(7)]);
    let full = engine_seminaive_eval_with_opts(&prog, &pops, &bools, CAP, &opts)
        .expect("compiles")
        .unwrap();
    let qa = engine_query_seminaive_eval(&prog, &q, &pops, &bools, CAP, &opts).expect("compiles");
    assert_eq!(q.restrict(full.get("T").unwrap()), qa.answers());

    let mut group = c.benchmark_group("magic_bom24x3d6");
    group.bench_with_input(
        BenchmarkId::new("full_seminaive", "forest"),
        &(),
        |b, ()| {
            b.iter(|| {
                engine_seminaive_eval_with_opts(
                    std::hint::black_box(&prog),
                    &pops,
                    &bools,
                    CAP,
                    &opts,
                )
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("query_seminaive", "root7"),
        &(),
        |b, ()| {
            b.iter(|| {
                engine_query_seminaive_eval(
                    std::hint::black_box(&prog),
                    &q,
                    &pops,
                    &bools,
                    CAP,
                    &opts,
                )
                .expect("compiles")
            })
        },
    );
    group.finish();
}

fn bench_magic_company(c: &mut Criterion) {
    let opts = EngineOpts::default();
    let (prog, pops, bools) = company_chain(48);
    let q = Query::new("T", vec![QueryArg::bound("c0"), QueryArg::Free]);
    let full = engine_naive_eval_with_opts(&prog, &pops, &bools, CAP, &opts)
        .expect("compiles")
        .unwrap();
    let qa = engine_query_naive_eval(&prog, &q, &pops, &bools, CAP, &opts).expect("compiles");
    assert_eq!(q.restrict(full.get("T").unwrap()), qa.answers());

    let mut group = c.benchmark_group("magic_company48");
    group.bench_with_input(BenchmarkId::new("full_naive", "all"), &(), |b, ()| {
        b.iter(|| {
            engine_naive_eval_with_opts(std::hint::black_box(&prog), &pops, &bools, CAP, &opts)
        })
    });
    group.bench_with_input(BenchmarkId::new("query_naive", "c0"), &(), |b, ()| {
        b.iter(|| {
            engine_query_naive_eval(std::hint::black_box(&prog), &q, &pops, &bools, CAP, &opts)
                .expect("compiles")
        })
    });
    group.finish();
}

/// The stdout speedup table: min wall-clock of `TABLE_REPS` runs per
/// (workload, full vs query) pair.
fn speedup_table(_c: &mut Criterion) {
    let bools = BoolDatabase::new();
    let opts = EngineOpts::default();
    let prog = apsp_program::<Trop>();
    let q = single_source_query();
    let mut rows = vec![];

    let time = |f: &mut dyn FnMut()| -> u128 {
        let mut best = u128::MAX;
        for _ in 0..TABLE_REPS {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_micros());
        }
        best
    };

    for (name, g) in [
        ("sssp_chain1k", GraphInstance::path(1000)),
        ("sssp_gradient800", GraphInstance::gradient(800)),
    ] {
        let edb = g.trop_edb();
        let full = time(&mut || {
            assert!(
                engine_eval_with_opts(&prog, &edb, &bools, CAP, Strategy::Priority, &opts)
                    .expect("compiles")
                    .is_converged()
            );
        });
        let query = time(&mut || {
            assert!(engine_query_eval_with_opts(
                &prog,
                &q,
                &edb,
                &bools,
                CAP,
                Strategy::Priority,
                &opts
            )
            .expect("compiles")
            .is_converged());
        });
        rows.push(vec![
            name.to_string(),
            "priority".into(),
            format!("{:.2}", full as f64 / 1000.0),
            format!("{:.2}", query as f64 / 1000.0),
            format!("{:.1}x", full as f64 / query as f64),
        ]);
    }
    {
        let (bprog, bpops, bbools) = bom_forest(24, 6, 3);
        let bq = Query::point("T", vec![bom_forest_root(7)]);
        let full = time(&mut || {
            assert!(
                engine_seminaive_eval_with_opts(&bprog, &bpops, &bbools, CAP, &opts)
                    .expect("compiles")
                    .is_converged()
            );
        });
        let query = time(&mut || {
            assert!(
                engine_query_seminaive_eval(&bprog, &bq, &bpops, &bbools, CAP, &opts)
                    .expect("compiles")
                    .is_converged()
            );
        });
        rows.push(vec![
            "bom24x3d6".into(),
            "seminaive".into(),
            format!("{:.2}", full as f64 / 1000.0),
            format!("{:.2}", query as f64 / 1000.0),
            format!("{:.1}x", full as f64 / query as f64),
        ]);
    }
    {
        let (cprog, cpops, cbools) = company_chain(48);
        let cq = Query::new("T", vec![QueryArg::bound("c0"), QueryArg::Free]);
        let full = time(&mut || {
            assert!(
                engine_naive_eval_with_opts(&cprog, &cpops, &cbools, CAP, &opts)
                    .expect("compiles")
                    .is_converged()
            );
        });
        let query = time(&mut || {
            assert!(
                engine_query_naive_eval(&cprog, &cq, &cpops, &cbools, CAP, &opts)
                    .expect("compiles")
                    .is_converged()
            );
        });
        rows.push(vec![
            "company48".into(),
            "naive".into(),
            format!("{:.2}", full as f64 / 1000.0),
            format!("{:.2}", query as f64 / 1000.0),
            format!("{:.1}x", full as f64 / query as f64),
        ]);
    }
    print_table(
        "full fixpoint vs demand-driven query (min of 3 runs)",
        &["workload", "strategy", "full_ms", "query_ms", "speedup"],
        &rows,
    );
}

criterion_group!(
    benches,
    bench_magic_sssp,
    bench_magic_bom,
    bench_magic_company,
    speedup_table
);
criterion_main!(benches);
