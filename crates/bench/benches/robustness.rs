//! Overhead of resource governance (PR 8): the same TC / SSSP
//! workloads evaluated ungoverned, with a (never-tripping) budget, and
//! with budget + cancellation token live. Governance is checked once
//! per phase on the coordinating thread, so the governed legs should
//! sit within noise of the ungoverned ones — the committed
//! `BENCH_robustness.json` pins that claim and
//! `robustness_guard` enforces it in CI against the
//! `BENCH_worklist.json` median.
//!
//! Reproduce with `CRITERION_JSON=out.jsonl cargo bench -p dlo_bench
//! --bench robustness`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlo_bench::GraphInstance;
use dlo_core::examples_lib::apsp_program;
use dlo_core::BoolDatabase;
use dlo_engine::{engine_eval_with_opts, CancelToken, EngineOpts, EvalBudget, Strategy};
use dlo_pops::Trop;

const CAP: usize = 100_000_000;

/// A generous budget no benchmark workload can trip: the point is to
/// measure the per-phase check, not to abort.
fn roomy_budget() -> EvalBudget {
    EvalBudget::default()
        .with_deadline(Duration::from_secs(3600))
        .with_max_steps(u64::MAX / 2)
        .with_max_rows(u64::MAX / 2)
        .with_max_minted(u64::MAX / 2)
}

fn governed(cancel: bool) -> EngineOpts {
    EngineOpts {
        budget: roomy_budget(),
        cancel: cancel.then(CancelToken::new),
        ..EngineOpts::default()
    }
}

fn bench_robustness_tc(c: &mut Criterion) {
    dlo_bench::print_host_note();
    let bools = BoolDatabase::new();
    let program = apsp_program::<Trop>();
    let chain = GraphInstance::path(1000);
    let edb = chain.trop_edb();

    // Governance must not change results: cross-check before timing.
    let free = engine_eval_with_opts(
        &program,
        &edb,
        &bools,
        CAP,
        Strategy::Worklist,
        &EngineOpts::default(),
    )
    .expect("compiles");
    let gov = engine_eval_with_opts(
        &program,
        &edb,
        &bools,
        CAP,
        Strategy::Worklist,
        &governed(true),
    )
    .expect("compiles");
    assert_eq!(free, gov, "governed run must be bit-identical");

    let mut group = c.benchmark_group("robustness_tc1k");
    let legs: [(&str, EngineOpts); 3] = [
        ("ungoverned", EngineOpts::default()),
        ("budget", governed(false)),
        ("budget_cancel", governed(true)),
    ];
    for (name, opts) in &legs {
        group.bench_with_input(BenchmarkId::new("worklist_trop", *name), &(), |bch, ()| {
            bch.iter(|| {
                engine_eval_with_opts(
                    std::hint::black_box(&program),
                    &edb,
                    &bools,
                    CAP,
                    Strategy::Worklist,
                    opts,
                )
                .expect("compiles")
            })
        });
    }
    group.finish();
}

fn bench_robustness_sssp(c: &mut Criterion) {
    let bools = BoolDatabase::new();
    let g = GraphInstance::gradient(1000);
    let (program, edb) = g.sssp();

    let free = engine_eval_with_opts(
        &program,
        &edb,
        &bools,
        CAP,
        Strategy::Priority,
        &EngineOpts::default(),
    )
    .expect("compiles");
    let gov = engine_eval_with_opts(
        &program,
        &edb,
        &bools,
        CAP,
        Strategy::Priority,
        &governed(true),
    )
    .expect("compiles");
    assert_eq!(free, gov, "governed run must be bit-identical");

    let mut group = c.benchmark_group("robustness_sssp_gradient");
    let legs: [(&str, EngineOpts); 3] = [
        ("ungoverned", EngineOpts::default()),
        ("budget", governed(false)),
        ("budget_cancel", governed(true)),
    ];
    for (name, opts) in &legs {
        group.bench_with_input(BenchmarkId::new("priority_trop", *name), &(), |bch, ()| {
            bch.iter(|| {
                engine_eval_with_opts(
                    std::hint::black_box(&program),
                    &edb,
                    &bools,
                    CAP,
                    Strategy::Priority,
                    opts,
                )
                .expect("compiles")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_robustness_tc, bench_robustness_sssp);
criterion_main!(benches);
