//! E20 — naïve (Algorithm 1) vs semi-naïve (Algorithm 3) evaluation.
//!
//! The paper's claim (Sec. 6): semi-naïve avoids rediscovering facts, so
//! per-fixpoint work drops from `iterations × all monomials` to roughly
//! `touched monomials`. The gap widens with the diameter of the instance
//! (paths and grids are adversarial for naïve).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlo_bench::GraphInstance;
use dlo_core::examples_lib::quadratic_tc_program;
use dlo_core::{ground_sparse, naive_eval_system, seminaive_eval_system, BoolDatabase};
use dlo_pops::{Bool, Trop};

fn bench_sssp(c: &mut Criterion) {
    dlo_bench::print_host_note();
    let mut group = c.benchmark_group("sssp_trop");
    for (name, g) in [
        ("path64", GraphInstance::path(64)),
        ("grid8", GraphInstance::grid(8)),
        ("random96", GraphInstance::random(96, 380, 9, 5)),
    ] {
        let (prog, edb) = g.sssp();
        let sys = ground_sparse(&prog, &edb, &BoolDatabase::new());
        // Correctness gate before timing.
        let naive = naive_eval_system(&sys, 1_000_000).unwrap();
        let semi = seminaive_eval_system(&sys, 1_000_000).0.unwrap();
        assert_eq!(naive, semi);
        group.bench_with_input(BenchmarkId::new("naive", name), &sys, |b, sys| {
            b.iter(|| naive_eval_system(std::hint::black_box(sys), 1_000_000))
        });
        group.bench_with_input(BenchmarkId::new("seminaive", name), &sys, |b, sys| {
            b.iter(|| seminaive_eval_system(std::hint::black_box(sys), 1_000_000))
        });
    }
    group.finish();
}

fn bench_tc_bool(c: &mut Criterion) {
    let mut group = c.benchmark_group("tc_bool_linear");
    for (name, g) in [
        ("path48", GraphInstance::path(48)),
        ("random40", GraphInstance::random(40, 100, 1, 9)),
    ] {
        let prog = dlo_core::examples_lib::apsp_program::<Bool>();
        let edb = g.bool_edb();
        let sys = ground_sparse(&prog, &edb, &BoolDatabase::new());
        let naive = naive_eval_system(&sys, 1_000_000).unwrap();
        let semi = seminaive_eval_system(&sys, 1_000_000).0.unwrap();
        assert_eq!(naive, semi);
        group.bench_with_input(BenchmarkId::new("naive", name), &sys, |b, sys| {
            b.iter(|| naive_eval_system(std::hint::black_box(sys), 1_000_000))
        });
        group.bench_with_input(BenchmarkId::new("seminaive", name), &sys, |b, sys| {
            b.iter(|| seminaive_eval_system(std::hint::black_box(sys), 1_000_000))
        });
    }
    group.finish();
}

fn bench_quadratic_tc(c: &mut Criterion) {
    // Example 6.6: the non-linear rule T(x,z) ∧ T(z,y).
    let mut group = c.benchmark_group("tc_bool_quadratic");
    let g = GraphInstance::path(20);
    let prog = quadratic_tc_program::<Bool>();
    let edb = g.bool_edb();
    let sys = ground_sparse(&prog, &edb, &BoolDatabase::new());
    group.bench_function("naive_path20", |b| {
        b.iter(|| naive_eval_system(std::hint::black_box(&sys), 1_000_000))
    });
    group.bench_function("seminaive_path20", |b| {
        b.iter(|| seminaive_eval_system(std::hint::black_box(&sys), 1_000_000))
    });
    group.finish();
}

fn bench_apsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("apsp_trop");
    let g = GraphInstance::random(24, 70, 9, 31);
    let prog = dlo_core::examples_lib::apsp_program::<Trop>();
    let edb = g.trop_edb();
    let sys = ground_sparse(&prog, &edb, &BoolDatabase::new());
    group.bench_function("naive_random24", |b| {
        b.iter(|| naive_eval_system(std::hint::black_box(&sys), 1_000_000))
    });
    group.bench_function("seminaive_random24", |b| {
        b.iter(|| seminaive_eval_system(std::hint::black_box(&sys), 1_000_000))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sssp,
    bench_tc_bool,
    bench_quadratic_tc,
    bench_apsp
);
criterion_main!(benches);
