//! E17 (performance side) — matrix closure `A*` by iteration vs
//! Floyd–Warshall–Kleene, sweeping `N` over `Trop⁺` and `Trop⁺_p`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlo_bench::GraphInstance;
use dlo_pops::Trop;
use dlo_semilin::{closure_fixpoint, fwk_closure, trop_p_cycle, Matrix};

fn trop_matrix(g: &GraphInstance) -> Matrix<Trop> {
    let mut a = Matrix::<Trop>::zeros(g.n);
    for &(u, v, w) in &g.edges {
        a.set(u, v, Trop::finite(w));
    }
    a
}

fn bench_trop_closure(c: &mut Criterion) {
    dlo_bench::print_host_note();
    let mut group = c.benchmark_group("closure_trop_random");
    for n in [16usize, 32, 64] {
        let g = GraphInstance::random(n, 4 * n, 9, 17);
        let a = trop_matrix(&g);
        let (iter, _) = closure_fixpoint(&a, 1_000_000).unwrap();
        assert_eq!(fwk_closure(&a), iter);
        group.bench_with_input(BenchmarkId::new("iterative", n), &a, |b, a| {
            b.iter(|| closure_fixpoint(std::hint::black_box(a), 1_000_000))
        });
        group.bench_with_input(BenchmarkId::new("fwk", n), &a, |b, a| {
            b.iter(|| fwk_closure(std::hint::black_box(a)))
        });
    }
    group.finish();
}

fn bench_trop_p_cycle_closure(c: &mut Criterion) {
    // The Lemma 5.20 adversarial family: iteration pays (p+1)N−1 rounds.
    let mut group = c.benchmark_group("closure_trop2_cycle");
    for n in [8usize, 16, 32] {
        let a = trop_p_cycle::<2>(n);
        group.bench_with_input(BenchmarkId::new("iterative", n), &a, |b, a| {
            b.iter(|| closure_fixpoint(std::hint::black_box(a), 1_000_000))
        });
        group.bench_with_input(BenchmarkId::new("fwk", n), &a, |b, a| {
            b.iter(|| fwk_closure(std::hint::black_box(a)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trop_closure, bench_trop_p_cycle_closure);
criterion_main!(benches);
