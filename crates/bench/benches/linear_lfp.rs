//! E18 — Theorem 5.22: `LinearLFP` (Algorithm 2) and the FWK closure vs
//! naïve iteration on linear systems over `Trop⁺_p`.
//!
//! On the adversarial `N`-cycle the naïve algorithm needs `(p+1)N − 1`
//! iterations of `O(N²)` work; `LinearLFP` runs in `O(pN + N³)` and the
//! FWK closure in `O(N³)` star operations. The paper's predicted shape:
//! elimination wins as `p` and `N` grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlo_pops::{PreSemiring, TropP};
use dlo_semilin::{
    fwk_solve, linear_lfp_auto, linear_naive_lfp, trop_p_cycle, AffineFn, AffineSystem, Matrix,
};

const P: usize = 3;

fn system_from_matrix(a: &Matrix<TropP<P>>, b: &[TropP<P>]) -> AffineSystem<TropP<P>> {
    let n = a.dim();
    let fns = (0..n)
        .map(|i| {
            let mut f = AffineFn::new();
            for j in 0..n {
                if !a.get(i, j).is_zero() {
                    f.add_term(j, a.get(i, j).clone());
                }
            }
            if !b[i].is_zero() {
                f.add_const(b[i].clone());
            }
            f
        })
        .collect();
    AffineSystem { fns }
}

fn bench_cycle(c: &mut Criterion) {
    dlo_bench::print_host_note();
    let mut group = c.benchmark_group("linear_lfp_trop3_cycle");
    for n in [8usize, 16, 32] {
        let a = trop_p_cycle::<P>(n);
        let mut b = vec![TropP::<P>::zero(); n];
        b[0] = TropP::<P>::one();
        let sys = system_from_matrix(&a, &b);
        // Correctness gate: all three agree.
        let (naive, steps) = linear_naive_lfp(&a, &b, 1_000_000).unwrap();
        assert_eq!(linear_lfp_auto(&sys), naive);
        assert_eq!(fwk_solve(&a, &b), naive);
        assert_eq!(steps, (P + 1) * n - 1 + 1); // index + confirming step

        group.bench_with_input(BenchmarkId::new("naive", n), &(&a, &b), |bch, (a, b)| {
            bch.iter(|| linear_naive_lfp(std::hint::black_box(a), b, 1_000_000))
        });
        group.bench_with_input(BenchmarkId::new("linear_lfp", n), &sys, |bch, sys| {
            bch.iter(|| linear_lfp_auto(std::hint::black_box(sys)))
        });
        group.bench_with_input(BenchmarkId::new("fwk", n), &(&a, &b), |bch, (a, b)| {
            bch.iter(|| fwk_solve(std::hint::black_box(a), b))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cycle);
criterion_main!(benches);
