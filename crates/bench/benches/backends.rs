//! Grounded vs relational backends: total time to answer (including
//! grounding where applicable), on SSSP workloads.
//!
//! The grounded backend pays `O(|ADom|^vars)` up front and then evaluates
//! a flat polynomial system; the relational backend joins per iteration.
//! For one-shot queries the relational path avoids materialization; for
//! repeated evaluation over the same EDB the grounded system amortizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlo_bench::GraphInstance;
use dlo_core::examples_lib::apsp_program;
use dlo_core::{
    ground_sparse, naive_eval_system, relational_naive_eval, relational_seminaive_eval,
    BoolDatabase,
};
use dlo_engine::engine_seminaive_eval;
use dlo_pops::{Bool, Trop};

fn bench_backends(c: &mut Criterion) {
    dlo_bench::print_host_note();
    let mut group = c.benchmark_group("backend_sssp_total");
    for n in [24usize, 48] {
        let g = GraphInstance::random(n, 3 * n, 9, 61);
        let (prog, edb) = g.sssp();
        let bools = BoolDatabase::new();
        // Cross-check once.
        let a = naive_eval_system(&ground_sparse(&prog, &edb, &bools), 1_000_000).unwrap();
        let b = relational_naive_eval(&prog, &edb, &bools, 1_000_000).unwrap();
        for (pred, r) in a.iter() {
            assert_eq!(Some(r), b.get(pred));
        }

        group.bench_with_input(BenchmarkId::new("ground_then_eval", n), &(), |bch, ()| {
            bch.iter(|| {
                let sys = ground_sparse(std::hint::black_box(&prog), &edb, &bools);
                naive_eval_system(&sys, 1_000_000)
            })
        });
        group.bench_with_input(BenchmarkId::new("relational_naive", n), &(), |bch, ()| {
            bch.iter(|| relational_naive_eval(std::hint::black_box(&prog), &edb, &bools, 1_000_000))
        });
        group.bench_with_input(
            BenchmarkId::new("relational_seminaive", n),
            &(),
            |bch, ()| {
                bch.iter(|| {
                    relational_seminaive_eval(std::hint::black_box(&prog), &edb, &bools, 1_000_000)
                })
            },
        );
    }
    group.finish();
}

/// Engine vs relational on 1k-node transitive closure: a unit-weight
/// chain (worst-case iteration count, |TC| = n(n-1)/2) and a sparse
/// random digraph, over `Trop⁺` (all-pairs shortest paths) and `𝔹`
/// (plain reachability).
///
/// The relational backend needs on the order of a minute per run at
/// this size (it re-scans `BTreeMap` supports per delta tuple), so the
/// stand-in criterion harness automatically takes a single sample for
/// it; the engine side is fast enough for full sampling. Recorded
/// baseline: `BENCH_engine.json`.
fn bench_engine_tc(c: &mut Criterion) {
    let bools = BoolDatabase::new();

    // Cross-check the backends once on a small instance.
    let small = GraphInstance::random(48, 120, 9, 7);
    let prog_t = apsp_program::<Trop>();
    let a = relational_seminaive_eval(&prog_t, &small.trop_edb(), &bools, 1_000_000).unwrap();
    let b = engine_seminaive_eval(&prog_t, &small.trop_edb(), &bools, 1_000_000)
        .expect("compiles")
        .unwrap();
    for (pred, r) in a.iter() {
        assert_eq!(
            Some(r),
            b.get(pred),
            "engine/relational cross-check: {pred}"
        );
    }

    let chain = GraphInstance::path(1000);
    let random = GraphInstance::random(1000, 1500, 9, 7);
    let mut group = c.benchmark_group("tc_1k");
    group.sample_size(5);
    for (name, g) in [("chain", &chain), ("random", &random)] {
        let prog_t = apsp_program::<Trop>();
        let edb_t = g.trop_edb();
        let prog_b = apsp_program::<Bool>();
        let edb_b = g.bool_edb();
        group.bench_with_input(BenchmarkId::new("engine_trop", name), &(), |bch, ()| {
            bch.iter(|| {
                engine_seminaive_eval(std::hint::black_box(&prog_t), &edb_t, &bools, 1_000_000)
                    .expect("compiles")
            })
        });
        group.bench_with_input(BenchmarkId::new("engine_bool", name), &(), |bch, ()| {
            bch.iter(|| {
                engine_seminaive_eval(std::hint::black_box(&prog_b), &edb_b, &bools, 1_000_000)
                    .expect("compiles")
            })
        });
        group.bench_with_input(BenchmarkId::new("relational_trop", name), &(), |bch, ()| {
            bch.iter(|| {
                relational_seminaive_eval(std::hint::black_box(&prog_t), &edb_t, &bools, 1_000_000)
            })
        });
        group.bench_with_input(BenchmarkId::new("relational_bool", name), &(), |bch, ()| {
            bch.iter(|| {
                relational_seminaive_eval(std::hint::black_box(&prog_b), &edb_b, &bools, 1_000_000)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backends, bench_engine_tc);
criterion_main!(benches);
