//! Grounded vs relational backends: total time to answer (including
//! grounding where applicable), on SSSP workloads.
//!
//! The grounded backend pays `O(|ADom|^vars)` up front and then evaluates
//! a flat polynomial system; the relational backend joins per iteration.
//! For one-shot queries the relational path avoids materialization; for
//! repeated evaluation over the same EDB the grounded system amortizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlo_bench::GraphInstance;
use dlo_core::{
    ground_sparse, naive_eval_system, relational_naive_eval, relational_seminaive_eval,
    BoolDatabase,
};

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_sssp_total");
    for n in [24usize, 48] {
        let g = GraphInstance::random(n, 3 * n, 9, 61);
        let (prog, edb) = g.sssp();
        let bools = BoolDatabase::new();
        // Cross-check once.
        let a = naive_eval_system(&ground_sparse(&prog, &edb, &bools), 1_000_000).unwrap();
        let b = relational_naive_eval(&prog, &edb, &bools, 1_000_000).unwrap();
        for (pred, r) in a.iter() {
            assert_eq!(Some(r), b.get(pred));
        }

        group.bench_with_input(BenchmarkId::new("ground_then_eval", n), &(), |bch, ()| {
            bch.iter(|| {
                let sys = ground_sparse(std::hint::black_box(&prog), &edb, &bools);
                naive_eval_system(&sys, 1_000_000)
            })
        });
        group.bench_with_input(BenchmarkId::new("relational_naive", n), &(), |bch, ()| {
            bch.iter(|| {
                relational_naive_eval(std::hint::black_box(&prog), &edb, &bools, 1_000_000)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("relational_seminaive", n),
            &(),
            |bch, ()| {
                bch.iter(|| {
                    relational_seminaive_eval(
                        std::hint::black_box(&prog),
                        &edb,
                        &bools,
                        1_000_000,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
