//! Semi-naïve vs worklist vs priority-frontier engine strategies
//! (`dlo_engine::worklist`) on iteration-bound workloads.
//!
//! The 1k-node chain is the pathological case for global iteration:
//! ~1000 semi-naïve rounds, each paying full accumulator/Δ-reindex
//! machinery for a handful of new facts. The priority frontier drains
//! one bucket per distinct distance instead (Dijkstra semantics over the
//! absorptive dioids, Cor. 5.19), the FIFO worklist propagates per-row.
//! The random digraph and the head-keyed `hops` workload bound the
//! other regimes (wide deltas, dynamic interning).
//!
//! Recorded baseline: `BENCH_worklist.json` (reproduce with
//! `CRITERION_JSON=out.jsonl cargo bench -p dlo_bench --bench
//! worklist_frontier`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlo_bench::GraphInstance;
use dlo_core::examples_lib::apsp_program;
use dlo_core::BoolDatabase;
use dlo_engine::{engine_priority_eval, engine_seminaive_eval, engine_worklist_eval};
use dlo_pops::{Bool, Trop};

const CAP: usize = 100_000_000;

fn bench_worklist_tc(c: &mut Criterion) {
    dlo_bench::print_host_note();
    let bools = BoolDatabase::new();

    // Cross-check the three strategies once on a small instance.
    let small = GraphInstance::random(48, 120, 9, 7);
    let prog_t = apsp_program::<Trop>();
    let a = engine_seminaive_eval(&prog_t, &small.trop_edb(), &bools, CAP)
        .expect("compiles")
        .unwrap();
    let b = engine_worklist_eval(&prog_t, &small.trop_edb(), &bools, CAP)
        .expect("compiles")
        .unwrap();
    let c_ = engine_priority_eval(&prog_t, &small.trop_edb(), &bools, CAP)
        .expect("compiles")
        .unwrap();
    assert_eq!(a, b, "worklist cross-check");
    assert_eq!(a, c_, "priority cross-check");

    let chain = GraphInstance::path(1000);
    let random = GraphInstance::random(1000, 1500, 9, 7);
    let mut group = c.benchmark_group("worklist_tc1k");
    for (name, g) in [("chain", &chain), ("random", &random)] {
        let prog_t = apsp_program::<Trop>();
        let edb_t = g.trop_edb();
        let prog_b = apsp_program::<Bool>();
        let edb_b = g.bool_edb();
        group.bench_with_input(BenchmarkId::new("seminaive_trop", name), &(), |bch, ()| {
            bch.iter(|| {
                engine_seminaive_eval(std::hint::black_box(&prog_t), &edb_t, &bools, CAP)
                    .expect("compiles")
            })
        });
        group.bench_with_input(BenchmarkId::new("worklist_trop", name), &(), |bch, ()| {
            bch.iter(|| {
                engine_worklist_eval(std::hint::black_box(&prog_t), &edb_t, &bools, CAP)
                    .expect("compiles")
            })
        });
        group.bench_with_input(BenchmarkId::new("priority_trop", name), &(), |bch, ()| {
            bch.iter(|| {
                engine_priority_eval(std::hint::black_box(&prog_t), &edb_t, &bools, CAP)
                    .expect("compiles")
            })
        });
        group.bench_with_input(BenchmarkId::new("seminaive_bool", name), &(), |bch, ()| {
            bch.iter(|| {
                engine_seminaive_eval(std::hint::black_box(&prog_b), &edb_b, &bools, CAP)
                    .expect("compiles")
            })
        });
        group.bench_with_input(BenchmarkId::new("priority_bool", name), &(), |bch, ()| {
            bch.iter(|| {
                engine_priority_eval(std::hint::black_box(&prog_b), &edb_b, &bools, CAP)
                    .expect("compiles")
            })
        });
    }
    group.finish();
}

/// The gradient graph (Bellman-Ford worst case, see
/// [`GraphInstance::gradient`]): Θ(n²) value updates for the global
/// semi-naïve loop vs Θ(n) settled pops for the frontier disciplines —
/// the workload where best-first scheduling is an asymptotic win, not a
/// constant factor.
fn bench_worklist_gradient(c: &mut Criterion) {
    let bools = BoolDatabase::new();
    let small = GraphInstance::gradient(64);
    let (prog, edb) = small.sssp();
    let a = engine_seminaive_eval(&prog, &edb, &bools, CAP)
        .expect("compiles")
        .unwrap();
    let b = engine_priority_eval(&prog, &edb, &bools, CAP)
        .expect("compiles")
        .unwrap();
    let w = engine_worklist_eval(&prog, &edb, &bools, CAP)
        .expect("compiles")
        .unwrap();
    assert_eq!(a, b, "gradient priority cross-check");
    assert_eq!(
        a.get("L"),
        w.get("L"),
        "gradient worklist cross-check (fixpoints agree; step counts differ by design)"
    );

    let g = GraphInstance::gradient(2000);
    let (prog, edb) = g.sssp();
    let mut group = c.benchmark_group("worklist_gradient2k");
    group.bench_with_input(BenchmarkId::new("seminaive", "sssp"), &(), |bch, ()| {
        bch.iter(|| {
            engine_seminaive_eval(std::hint::black_box(&prog), &edb, &bools, CAP).expect("compiles")
        })
    });
    group.bench_with_input(BenchmarkId::new("worklist", "sssp"), &(), |bch, ()| {
        bch.iter(|| {
            engine_worklist_eval(std::hint::black_box(&prog), &edb, &bools, CAP).expect("compiles")
        })
    });
    group.bench_with_input(BenchmarkId::new("priority", "sssp"), &(), |bch, ()| {
        bch.iter(|| {
            engine_priority_eval(std::hint::black_box(&prog), &edb, &bools, CAP).expect("compiles")
        })
    });
    group.finish();
}

/// The head-keyed `hops` workload: every frontier batch mints fresh hop
/// indexes through the dynamic interner, so this bounds the minting
/// overhead of the frontier drivers against the global loop.
fn bench_worklist_hops(c: &mut Criterion) {
    let bools = BoolDatabase::new();
    let small = GraphInstance::random(24, 72, 9, 5);
    let (prog, edb) = small.hops(6);
    let a = engine_seminaive_eval(&prog, &edb, &bools, CAP)
        .expect("compiles")
        .unwrap();
    let b = engine_priority_eval(&prog, &edb, &bools, CAP)
        .expect("compiles")
        .unwrap();
    assert_eq!(a, b, "hops cross-check");

    let g = GraphInstance::random(400, 1600, 9, 7);
    let (prog_h, edb_h) = g.hops(24);
    let mut group = c.benchmark_group("worklist_hops");
    group.bench_with_input(BenchmarkId::new("seminaive", "hops"), &(), |bch, ()| {
        bch.iter(|| {
            engine_seminaive_eval(std::hint::black_box(&prog_h), &edb_h, &bools, CAP)
                .expect("compiles")
        })
    });
    group.bench_with_input(BenchmarkId::new("worklist", "hops"), &(), |bch, ()| {
        bch.iter(|| {
            engine_worklist_eval(std::hint::black_box(&prog_h), &edb_h, &bools, CAP)
                .expect("compiles")
        })
    });
    group.bench_with_input(BenchmarkId::new("priority", "hops"), &(), |bch, ()| {
        bch.iter(|| {
            engine_priority_eval(std::hint::black_box(&prog_h), &edb_h, &bools, CAP)
                .expect("compiles")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_worklist_tc,
    bench_worklist_gradient,
    bench_worklist_hops
);
criterion_main!(benches);
