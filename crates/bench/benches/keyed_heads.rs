//! Engine vs relational on head-key-function workloads (Sec. 4.5).
//!
//! Two shapes, both deriving rows under keys computed in the rule head
//! (the programs the engine used to hand back to the relational
//! backend):
//!
//! * `hops` — hop-indexed shortest paths on a random digraph: wide
//!   deltas, every iteration minting a fresh hop index;
//! * `prefix` — the Example 4.5 prefix program in head-keyed form over
//!   `Trop⁺`: a maximally deep chain (one new key per iteration), the
//!   worst case for per-iteration overheads.
//!
//! Recorded baseline: `BENCH_keyed.json` (reproduce with
//! `CRITERION_JSON=out.jsonl cargo bench -p dlo_bench --bench
//! keyed_heads`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlo_bench::GraphInstance;
use dlo_core::examples_lib::prefix_sum_keyed;
use dlo_core::{relational_seminaive_eval, BoolDatabase};
use dlo_engine::engine_seminaive_eval;
use dlo_pops::Trop;

fn bench_keyed_heads(c: &mut Criterion) {
    dlo_bench::print_host_note();
    let bools = BoolDatabase::new();

    // Cross-check the backends once on a small instance of each shape.
    let small = GraphInstance::random(24, 72, 9, 5);
    let (prog, edb) = small.hops(6);
    let a = relational_seminaive_eval(&prog, &edb, &bools, 1_000_000).unwrap();
    let b = engine_seminaive_eval(&prog, &edb, &bools, 1_000_000)
        .expect("compiles")
        .unwrap();
    assert_eq!(a, b, "hops cross-check");
    let (prog, edb) = prefix_sum_keyed::<Trop>(&[1.0, 2.0, 3.0, 4.0], Trop::finite);
    let a = relational_seminaive_eval(&prog, &edb, &bools, 1_000_000).unwrap();
    let b = engine_seminaive_eval(&prog, &edb, &bools, 1_000_000)
        .expect("compiles")
        .unwrap();
    assert_eq!(a, b, "prefix cross-check");

    let mut group = c.benchmark_group("keyed_heads");
    group.sample_size(5);

    let g = GraphInstance::random(400, 1600, 9, 7);
    let (prog_h, edb_h) = g.hops(24);
    group.bench_with_input(BenchmarkId::new("engine", "hops"), &(), |bch, ()| {
        bch.iter(|| {
            engine_seminaive_eval(std::hint::black_box(&prog_h), &edb_h, &bools, 1_000_000)
                .expect("compiles")
        })
    });
    group.bench_with_input(BenchmarkId::new("relational", "hops"), &(), |bch, ()| {
        bch.iter(|| {
            relational_seminaive_eval(std::hint::black_box(&prog_h), &edb_h, &bools, 1_000_000)
        })
    });

    let values: Vec<f64> = (0..2000).map(|i| 0.5 + (i % 7) as f64).collect();
    let (prog_p, edb_p) = prefix_sum_keyed::<Trop>(&values, Trop::finite);
    group.bench_with_input(BenchmarkId::new("engine", "prefix"), &(), |bch, ()| {
        bch.iter(|| {
            engine_seminaive_eval(std::hint::black_box(&prog_p), &edb_p, &bools, 1_000_000)
                .expect("compiles")
        })
    });
    group.bench_with_input(BenchmarkId::new("relational", "prefix"), &(), |bch, ()| {
        bch.iter(|| {
            relational_seminaive_eval(std::hint::black_box(&prog_p), &edb_p, &bools, 1_000_000)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_keyed_heads);
criterion_main!(benches);
