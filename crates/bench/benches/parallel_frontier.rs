//! Sequential vs parallel frontier batches (`dlo_engine::worklist`) at
//! 1–4 worker threads, on the three frontier regimes:
//!
//! * `tc1k` — chain transitive closure over Trop: priority buckets hold
//!   ~1000 rows, *below* the default fan-out threshold, so every thread
//!   count runs the adaptive sequential fallback — these legs measure
//!   that dense-enough-to-batch-but-too-sparse-to-spawn frontiers pay
//!   nothing for the parallel machinery;
//! * `gradient2k` — the Bellman-Ford worst case: priority batches hold
//!   1–2 rows, the extreme sparse case for the fallback;
//! * `hops` — the head-keyed hop workload on a dense 6k-node digraph:
//!   FIFO generations hold ~6000 rows (above the threshold), so batch ×
//!   plan tasks genuinely fan out — the dense workload where multi-core
//!   hardware shows wall-clock speedup (a single-core container shows
//!   the scheduling overhead instead; see `BENCH_parallel.json`'s
//!   environment note).
//!
//! Ends by printing a sequential-vs-parallel speedup table (min of
//! `TABLE_REPS` timed runs per cell, separate from the criterion
//! sampling above it).
//!
//! Recorded baseline: `BENCH_parallel.json` (reproduce with
//! `CRITERION_SAMPLES=3 CRITERION_JSON=out.jsonl cargo bench -p
//! dlo_bench --bench parallel_frontier`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlo_bench::{print_table, GraphInstance};
use dlo_core::examples_lib::apsp_program;
use dlo_core::{BoolDatabase, Database, Program};
use dlo_engine::{engine_eval_with_opts, EngineOpts, Strategy};
use dlo_pops::Trop;
use std::time::Instant;

const CAP: usize = 100_000_000;
const TABLE_REPS: usize = 3;

fn opts(threads: usize) -> EngineOpts {
    EngineOpts {
        threads: Some(threads),
        ..EngineOpts::default()
    }
}

/// The dense head-keyed instance: generations of ~n rows, above the
/// default fan-out threshold.
fn hops_dense() -> (Program<Trop>, Database<Trop>) {
    GraphInstance::random(6000, 48_000, 9, 7).hops(16)
}

fn bench_parallel_tc(c: &mut Criterion) {
    dlo_bench::print_host_note();
    let bools = BoolDatabase::new();
    // Cross-check once: forced-parallel output equals sequential.
    let small = GraphInstance::random(48, 120, 9, 7);
    let prog = apsp_program::<Trop>();
    let seq = engine_eval_with_opts(
        &prog,
        &small.trop_edb(),
        &bools,
        CAP,
        Strategy::Priority,
        &opts(1),
    )
    .expect("compiles");
    let par = engine_eval_with_opts(
        &prog,
        &small.trop_edb(),
        &bools,
        CAP,
        Strategy::Priority,
        &EngineOpts {
            threads: Some(4),
            par_threshold: 1,
            chunk_min: 2,
            ..EngineOpts::default()
        },
    )
    .expect("compiles");
    assert_eq!(seq, par, "forced-parallel cross-check");

    let chain = GraphInstance::path(1000);
    let edb = chain.trop_edb();
    let mut group = c.benchmark_group("parallel_tc1k");
    for (strategy, sname) in [
        (Strategy::Priority, "priority"),
        (Strategy::Worklist, "worklist"),
    ] {
        for threads in [1usize, 2, 4] {
            let o = opts(threads);
            group.bench_with_input(
                BenchmarkId::new(&format!("{sname}_trop_chain"), format!("t{threads}")),
                &(),
                |bch, ()| {
                    bch.iter(|| {
                        engine_eval_with_opts(
                            std::hint::black_box(&prog),
                            &edb,
                            &bools,
                            CAP,
                            strategy,
                            &o,
                        )
                        .expect("compiles")
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_parallel_gradient(c: &mut Criterion) {
    let bools = BoolDatabase::new();
    let (prog, edb) = GraphInstance::gradient(2000).sssp();
    let mut group = c.benchmark_group("parallel_gradient2k");
    for threads in [1usize, 4] {
        let o = opts(threads);
        group.bench_with_input(
            BenchmarkId::new("priority_sssp", format!("t{threads}")),
            &(),
            |bch, ()| {
                bch.iter(|| {
                    engine_eval_with_opts(
                        std::hint::black_box(&prog),
                        &edb,
                        &bools,
                        CAP,
                        Strategy::Priority,
                        &o,
                    )
                    .expect("compiles")
                })
            },
        );
    }
    group.finish();
}

fn bench_parallel_hops(c: &mut Criterion) {
    let bools = BoolDatabase::new();
    // Cross-check the dense instance's strategies agree (on a small
    // sibling, to keep the check cheap).
    let small = GraphInstance::random(24, 72, 9, 5);
    let (sprog, sedb) = small.hops(6);
    // Step counts differ across strategies by design — fixpoints agree.
    let a = engine_eval_with_opts(&sprog, &sedb, &bools, CAP, Strategy::SemiNaive, &opts(1))
        .expect("compiles")
        .unwrap();
    let b = engine_eval_with_opts(&sprog, &sedb, &bools, CAP, Strategy::Worklist, &opts(4))
        .expect("compiles")
        .unwrap();
    assert_eq!(a, b, "hops cross-check");

    let (prog, edb) = hops_dense();
    let mut group = c.benchmark_group("parallel_hops");
    for (strategy, sname) in [
        (Strategy::Worklist, "worklist"),
        (Strategy::SemiNaive, "seminaive"),
    ] {
        for threads in [1usize, 2, 4] {
            let o = opts(threads);
            group.bench_with_input(
                BenchmarkId::new(sname, format!("t{threads}")),
                &(),
                |bch, ()| {
                    bch.iter(|| {
                        engine_eval_with_opts(
                            std::hint::black_box(&prog),
                            &edb,
                            &bools,
                            CAP,
                            strategy,
                            &o,
                        )
                        .expect("compiles")
                    })
                },
            );
        }
    }
    group.finish();
}

/// The stdout speedup table: min wall-clock of `TABLE_REPS` runs per
/// (workload, strategy, threads) cell, plus the t1/t4 ratio.
fn speedup_table(_c: &mut Criterion) {
    let bools = BoolDatabase::new();
    let chain = GraphInstance::path(1000);
    let chain_prog = apsp_program::<Trop>();
    let chain_edb = chain.trop_edb();
    let (grad_prog, grad_edb) = GraphInstance::gradient(2000).sssp();
    let (hops_prog, hops_edb) = hops_dense();
    let cases: Vec<(&str, Strategy, &Program<Trop>, &Database<Trop>)> = vec![
        ("chain_tc1k", Strategy::Priority, &chain_prog, &chain_edb),
        ("chain_tc1k", Strategy::Worklist, &chain_prog, &chain_edb),
        ("gradient2k", Strategy::Priority, &grad_prog, &grad_edb),
        ("hops_dense", Strategy::Worklist, &hops_prog, &hops_edb),
        ("hops_dense", Strategy::SemiNaive, &hops_prog, &hops_edb),
    ];
    let mut rows = vec![];
    for (name, strategy, prog, edb) in cases {
        let mut mins = vec![];
        for threads in [1usize, 4] {
            let o = opts(threads);
            let mut best = u128::MAX;
            for _ in 0..TABLE_REPS {
                let t0 = Instant::now();
                let out =
                    engine_eval_with_opts(prog, edb, &bools, CAP, strategy, &o).expect("compiles");
                assert!(out.is_converged(), "{name} converges");
                best = best.min(t0.elapsed().as_micros());
            }
            mins.push(best);
        }
        rows.push(vec![
            name.to_string(),
            format!("{strategy:?}"),
            format!("{:.1}", mins[0] as f64 / 1000.0),
            format!("{:.1}", mins[1] as f64 / 1000.0),
            format!("{:.2}x", mins[0] as f64 / mins[1] as f64),
        ]);
    }
    print_table(
        "sequential vs parallel frontier (min of 3 runs; speedup = t1/t4, < 1 means overhead)",
        &["workload", "strategy", "t1_ms", "t4_ms", "speedup_t4"],
        &rows,
    );
}

criterion_group!(
    benches,
    bench_parallel_tc,
    bench_parallel_gradient,
    bench_parallel_hops,
    speedup_table
);
criterion_main!(benches);
