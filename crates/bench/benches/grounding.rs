//! Grounding cost: dense (paper-literal, `ADom`-enumerating) vs sparse
//! (support-join) modes, and the downstream effect on evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlo_bench::GraphInstance;
use dlo_core::{ground, ground_sparse, BoolDatabase};

fn bench_grounding(c: &mut Criterion) {
    dlo_bench::print_host_note();
    let mut group = c.benchmark_group("ground_sssp");
    for n in [12usize, 24, 48] {
        let g = GraphInstance::random(n, 3 * n, 9, 23);
        let (prog, edb) = g.sssp();
        let bools = BoolDatabase::new();
        // Equivalent fixpoints (checked once per size).
        let dense = ground(&prog, &edb, &bools);
        let sparse = ground_sparse(&prog, &edb, &bools);
        let dv = dlo_core::naive_eval_system(&dense, 1_000_000).unwrap();
        let sv = dlo_core::naive_eval_system(&sparse, 1_000_000).unwrap();
        assert_eq!(dv, sv);

        group.bench_with_input(BenchmarkId::new("dense", n), &(), |b, ()| {
            b.iter(|| ground(std::hint::black_box(&prog), &edb, &bools))
        });
        group.bench_with_input(BenchmarkId::new("sparse", n), &(), |b, ()| {
            b.iter(|| ground_sparse(std::hint::black_box(&prog), &edb, &bools))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grounding);
criterion_main!(benches);
