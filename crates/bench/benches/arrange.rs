//! Hash-prefix join vs sorted-arrangement merge join
//! (`dlo_engine::arrange`) on the four join regimes the engine serves:
//!
//! * `tc4_labeled` — the arity-4 labeled closure: the recursive probe
//!   key covers three columns, past the packed-`u64` fast path of the
//!   hash-prefix indexes, so the hash side pays boxed wide keys — the
//!   regime `JoinMode::Auto` arranges by default;
//! * `wide_lookup` — the build-dominated lookup: a large arity-4 fact
//!   table probed through two prefix-sharing wide masks, which one
//!   sorted arrangement serves while hashing builds two boxed-key
//!   indexes over the full table;
//! * `tc512` — chain transitive closure over Trop: arity-2 packed-key
//!   joins, the regime where the hash fast path is hard to beat and the
//!   merge legs measure what forcing arrangements costs;
//! * `sssp` — single-source shortest path on a random digraph: sparse
//!   deltas probing a static arity-3 weighted edge relation.
//!
//! Ends by printing a hash-vs-merge wall-clock table (min of
//! `TABLE_REPS` timed runs per cell, separate from the criterion
//! sampling above it).
//!
//! Recorded baseline: `BENCH_arrange.json`, written and gated by the
//! `arrange_guard` binary (reproduce with `cargo run --release -p
//! dlo_bench --bin arrange_guard`); this bench is the interactive
//! profiling surface for the same legs (`CRITERION_SAMPLES=3
//! CRITERION_JSON=out.jsonl cargo bench -p dlo_bench --bench arrange`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlo_bench::{labeled_tc4, print_table, wide_lookup, GraphInstance};
use dlo_core::examples_lib::apsp_program;
use dlo_core::{BoolDatabase, Database, Program};
use dlo_engine::{engine_eval_with_opts, EngineOpts, JoinMode, Strategy};
use dlo_pops::Trop;
use std::time::Instant;

const CAP: usize = 100_000_000;
const TABLE_REPS: usize = 3;

fn mode_opts(mode: JoinMode) -> EngineOpts {
    EngineOpts {
        join_mode: Some(mode),
        ..EngineOpts::default()
    }
}

/// The benched workloads: `(label, program, trop EDB)`. The `wide`
/// instance is smaller than `arrange_guard`'s recorded one to keep the
/// criterion sweep interactive.
fn workloads() -> Vec<(&'static str, Program<Trop>, Database<Trop>)> {
    let (tc4_prog, tc4_edb) = labeled_tc4(4, 256);
    let (wide_prog, wide_edb) = wide_lookup(400_000, 10_000, 42);
    let (sssp_prog, sssp_edb) = GraphInstance::random(2000, 8000, 9, 11).sssp();
    vec![
        ("tc4_labeled", tc4_prog, tc4_edb),
        ("wide_lookup", wide_prog, wide_edb),
        (
            "tc512",
            apsp_program::<Trop>(),
            GraphInstance::path(512).trop_edb(),
        ),
        ("sssp", sssp_prog, sssp_edb),
    ]
}

fn bench_arrange(c: &mut Criterion) {
    dlo_bench::print_host_note();
    let bools = BoolDatabase::new();

    // Cross-check once on a small sibling: the join mode must not
    // change the fixpoint (the full matrix lives in the tier-1 tests).
    let (sprog, sedb) = labeled_tc4(2, 24);
    let hash = engine_eval_with_opts(
        &sprog,
        &sedb,
        &bools,
        CAP,
        Strategy::SemiNaive,
        &mode_opts(JoinMode::Hash),
    )
    .expect("compiles");
    let merge = engine_eval_with_opts(
        &sprog,
        &sedb,
        &bools,
        CAP,
        Strategy::SemiNaive,
        &mode_opts(JoinMode::Merge),
    )
    .expect("compiles");
    assert_eq!(hash, merge, "join-mode cross-check");

    let workloads = workloads();
    let mut group = c.benchmark_group("arrange_join");
    for (label, prog, edb) in &workloads {
        for (mode, mname) in [(JoinMode::Hash, "hash"), (JoinMode::Merge, "merge")] {
            let o = mode_opts(mode);
            group.bench_with_input(BenchmarkId::new(label, mname), &(), |bch, ()| {
                bch.iter(|| {
                    engine_eval_with_opts(
                        std::hint::black_box(prog),
                        edb,
                        &bools,
                        CAP,
                        Strategy::SemiNaive,
                        &o,
                    )
                    .expect("compiles")
                })
            });
        }
    }
    group.finish();

    // The summary table: min of TABLE_REPS per (workload, mode).
    let timed = |prog: &Program<Trop>, edb: &Database<Trop>, mode: JoinMode| -> f64 {
        let o = mode_opts(mode);
        (0..TABLE_REPS)
            .map(|_| {
                let t = Instant::now();
                engine_eval_with_opts(prog, edb, &bools, CAP, Strategy::SemiNaive, &o)
                    .expect("compiles");
                t.elapsed().as_secs_f64() * 1e3
            })
            .fold(f64::INFINITY, f64::min)
    };
    let rows: Vec<Vec<String>> = workloads
        .iter()
        .map(|(label, prog, edb)| {
            let h = timed(prog, edb, JoinMode::Hash);
            let m = timed(prog, edb, JoinMode::Merge);
            vec![
                label.to_string(),
                format!("{h:.1}"),
                format!("{m:.1}"),
                format!("{:.2}x", h / m),
            ]
        })
        .collect();
    print_table(
        &format!("hash vs merge join (min of {TABLE_REPS}; speedup > 1 means arranged is faster)"),
        &["workload", "hash_ms", "merge_ms", "arranged_speedup"],
        &rows,
    );
}

criterion_group!(benches, bench_arrange);
criterion_main!(benches);
