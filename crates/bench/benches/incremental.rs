//! Incremental maintenance vs full re-evaluation
//! (`dlo_engine::incremental::Materialization` vs re-running the
//! fixpoint from scratch after an EDB edit), on all-pairs shortest
//! paths over the 1000-node unit chain (≈ 500k `T` rows):
//!
//! * `incremental_chain1k` — criterion legs that `b.iter` can repeat:
//!   the from-scratch rebuild, an idempotent delete + reinsert cycle
//!   of the tail chain edge, and an absorbed single-edge insert (a
//!   parallel route strictly worse than the standing distance — the
//!   O(|Δ|) fast path).
//! * the stdout speedup table times the **one-shot** edits criterion
//!   cannot repeat: a fresh materialization is built (untimed) per
//!   rep, then one single-edge edit is timed (min of `TABLE_REPS`).
//!   This is the source of the recorded acceptance number: the
//!   single-edge **insert** ≥ 5× faster than full re-evaluation.
//!
//! The two edit kinds are *expected* to sit at opposite ends, and the
//! table reports both honestly. An insert continues semi-naïve
//! iteration from the old fixpoint with an O(|Δ|) seed — work scales
//! with the rows the edit actually improves. A delete (DRed-style
//! delete-rederive, generalized to dioid values) must rederive the
//! overapproximated affected set from the survivors, which costs one
//! restricted naïve step — the same order as a full join pass over the
//! IDB. That asymmetry is the documented contract
//! (`dlo_engine::incremental`): live pipelines should prefer
//! insert-only growth and batch deletions.
//!
//! Recorded baseline: `BENCH_incremental.json` (reproduce with
//! `CRITERION_SAMPLES=3 CRITERION_JSON=out.jsonl cargo bench -p
//! dlo_bench --bench incremental`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlo_bench::{print_host_note, print_table, GraphInstance};
use dlo_core::edit::{FactDelete, FactInsert};
use dlo_core::examples_lib::apsp_program;
use dlo_core::{BoolDatabase, Database, Program};
use dlo_engine::{engine_seminaive_eval_with_opts, EngineOpts, Materialization, Strategy};
use dlo_pops::Trop;
use std::time::Instant;

const CAP: usize = 100_000;
const TABLE_REPS: usize = 3;

/// The tail chain edge `E(n-2, n-1)` — the only way into the last node:
/// deleting it marks and retracts the Θ(n) distances into the sink,
/// reinserting it re-derives them.
fn tail_delete(g: &GraphInstance) -> FactDelete {
    FactDelete::new("E", vec![g.node(g.n - 2), g.node(g.n - 1)])
}

fn tail_insert(g: &GraphInstance) -> FactInsert<Trop> {
    FactInsert::new(
        "E",
        vec![g.node(g.n - 2), g.node(g.n - 1)],
        Trop::finite(1.0),
    )
}

/// A parallel two-hop route `E(100, 102)` strictly worse than the
/// standing distance (5 > 2): the insert is absorbed without touching
/// a single IDB row, and repeating it is a no-op on EDB and IDB alike.
fn absorbed_insert(g: &GraphInstance) -> FactInsert<Trop> {
    FactInsert::new("E", vec![g.node(100), g.node(102)], Trop::finite(5.0))
}

/// A shortcut into the sink, `E(500, 999)` at weight 1: improves the
/// 501 distances `T(i, 999)`, `i ≤ 500`, and nothing else (the sink
/// has no outgoing edges) — a genuinely propagating single-edge
/// insert whose work is Θ(affected), not Θ(n²).
fn shortcut_insert(g: &GraphInstance) -> FactInsert<Trop> {
    FactInsert::new("E", vec![g.node(500), g.node(g.n - 1)], Trop::finite(1.0))
}

fn fresh_mat(
    prog: &Program<Trop>,
    edb: &Database<Trop>,
    bools: &BoolDatabase,
    opts: &EngineOpts,
) -> Materialization<Trop> {
    Materialization::new(prog, edb, bools, CAP, Strategy::SemiNaive, opts).expect("compiles")
}

fn bench_incremental_chain1k(c: &mut Criterion) {
    print_host_note();
    let bools = BoolDatabase::new();
    let opts = EngineOpts::default();
    let prog = apsp_program::<Trop>();
    let g = GraphInstance::path(1000);
    let edb = g.trop_edb();

    // Cross-check once: a full delete + reinsert cycle lands back on
    // the from-scratch fixpoint, bit for bit.
    let mut mat = fresh_mat(&prog, &edb, &bools, &opts);
    let scratch = engine_seminaive_eval_with_opts(&prog, &edb, &bools, CAP, &opts)
        .expect("compiles")
        .unwrap();
    mat.delete(&[tail_delete(&g)]).expect("edit applies");
    mat.insert(&[tail_insert(&g)]).expect("edit applies");
    assert_eq!(
        scratch.get("T"),
        mat.output().materialize().get("T"),
        "edit cycle must restore the from-scratch fixpoint"
    );

    let mut group = c.benchmark_group("incremental_chain1k");
    group.bench_with_input(
        BenchmarkId::new("full_seminaive", "rebuild"),
        &(),
        |b, ()| {
            b.iter(|| {
                engine_seminaive_eval_with_opts(
                    std::hint::black_box(&prog),
                    &edb,
                    &bools,
                    CAP,
                    &opts,
                )
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("edit_cycle", "tail_delete_reinsert"),
        &(),
        |b, ()| {
            let del = [tail_delete(&g)];
            let ins = [tail_insert(&g)];
            b.iter(|| {
                mat.delete(std::hint::black_box(&del))
                    .expect("edit applies");
                mat.insert(&ins).expect("edit applies");
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("single_edge", "insert_absorbed"),
        &(),
        |b, ()| {
            let ins = [absorbed_insert(&g)];
            b.iter(|| {
                mat.insert(std::hint::black_box(&ins))
                    .expect("edit applies");
            })
        },
    );
    group.finish();
}

/// The stdout speedup table: the one-shot single-edge edits, each
/// timed on a freshly built materialization (build untimed), min of
/// `TABLE_REPS` reps; the absorbed insert repeats on one instance.
/// `speedup` = full-rebuild min over per-edit min — the recorded
/// acceptance number for the insert row (≥ 5×).
fn speedup_table(_c: &mut Criterion) {
    let bools = BoolDatabase::new();
    let opts = EngineOpts::default();
    let prog = apsp_program::<Trop>();
    let g = GraphInstance::path(1000);
    let edb = g.trop_edb();

    let full = {
        let mut best = u128::MAX;
        for _ in 0..TABLE_REPS {
            let t0 = Instant::now();
            assert!(
                engine_seminaive_eval_with_opts(&prog, &edb, &bools, CAP, &opts)
                    .expect("compiles")
                    .is_converged()
            );
            best = best.min(t0.elapsed().as_micros());
        }
        best
    };

    // One-shot edits: fresh materialization per rep, edit timed alone.
    let one_shot = |edit: &mut dyn FnMut(&mut Materialization<Trop>)| -> u128 {
        let mut best = u128::MAX;
        for _ in 0..TABLE_REPS {
            let mut mat = fresh_mat(&prog, &edb, &bools, &opts);
            let t0 = Instant::now();
            edit(&mut mat);
            best = best.min(t0.elapsed().as_micros());
        }
        best
    };
    let ins = [shortcut_insert(&g)];
    let insert_us = one_shot(&mut |mat| {
        mat.insert(&ins).expect("edit applies");
    });
    let del = [tail_delete(&g)];
    let delete_us = one_shot(&mut |mat| {
        mat.delete(&del).expect("edit applies");
    });

    // The absorbed fast path is idempotent: one instance, repeated.
    let absorbed_us = {
        let mut mat = fresh_mat(&prog, &edb, &bools, &opts);
        let ins = [absorbed_insert(&g)];
        let mut best = u128::MAX;
        for _ in 0..TABLE_REPS {
            let t0 = Instant::now();
            mat.insert(&ins).expect("edit applies");
            best = best.min(t0.elapsed().as_micros());
        }
        best
    };

    let rows: Vec<Vec<String>> = [
        ("insert_shortcut(500→999)", insert_us),
        ("insert_absorbed(100→102)", absorbed_us),
        ("delete_tail(998→999)", delete_us),
    ]
    .iter()
    .map(|&(name, edit)| {
        vec![
            name.to_string(),
            format!("{:.2}", full as f64 / 1000.0),
            format!("{:.3}", edit as f64 / 1000.0),
            format!("{:.1}x", full as f64 / edit as f64),
        ]
    })
    .collect();
    print_table(
        "full re-evaluation vs single-edge incremental edit (chain-1k APSP, min of 3 runs)",
        &["edit", "full_ms", "edit_ms", "speedup"],
        &rows,
    );
}

criterion_group!(benches, bench_incremental_chain1k, speedup_table);
criterion_main!(benches);
