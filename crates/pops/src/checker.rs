//! Exhaustive algebraic-law checker for finite structures.
//!
//! For structures with a [`FiniteCarrier`], verifies the definitions of
//! Sec. 2 and Sec. 6 literally: pre-semiring laws (Def. 2.1), absorption,
//! POPS laws (Def. 2.3 — poset axioms, `⊥` minimum, monotonicity of `⊕`/`⊗`,
//! strictness of `⊗`), dioid idempotency, Proposition 6.1 (a dioid's `⊕` is
//! the lub of its natural order), the natural-order coincidence for
//! [`NaturallyOrdered`] markers, and Lemma 6.3's difference laws
//! (58)–(60). Infinite structures get the same laws via sampled property
//! tests elsewhere.

use crate::traits::*;

/// A law violation found by the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which law failed (human-readable).
    pub law: String,
}

fn check<T>(violations: &mut Vec<Violation>, ok: bool, law: impl FnOnce() -> String, _w: &T) {
    if !ok {
        violations.push(Violation { law: law() });
    }
}

/// Checks the commutative pre-semiring laws (Definition 2.1) exhaustively.
pub fn pre_semiring_laws<S: PreSemiring + FiniteCarrier>() -> Vec<Violation> {
    let mut v = vec![];
    let c = S::carrier();
    let zero = S::zero();
    let one = S::one();
    for x in &c {
        check(&mut v, &x.add(&zero) == x, || format!("{x:?} ⊕ 0 = x"), x);
        check(&mut v, &x.mul(&one) == x, || format!("{x:?} ⊗ 1 = x"), x);
        for y in &c {
            check(
                &mut v,
                x.add(y) == y.add(x),
                || format!("⊕ comm {x:?} {y:?}"),
                x,
            );
            check(
                &mut v,
                x.mul(y) == y.mul(x),
                || format!("⊗ comm {x:?} {y:?}"),
                x,
            );
            for z in &c {
                check(
                    &mut v,
                    x.add(y).add(z) == x.add(&y.add(z)),
                    || format!("⊕ assoc {x:?} {y:?} {z:?}"),
                    x,
                );
                check(
                    &mut v,
                    x.mul(y).mul(z) == x.mul(&y.mul(z)),
                    || format!("⊗ assoc {x:?} {y:?} {z:?}"),
                    x,
                );
                check(
                    &mut v,
                    x.mul(&y.add(z)) == x.mul(y).add(&x.mul(z)),
                    || format!("distributivity {x:?} {y:?} {z:?}"),
                    x,
                );
            }
        }
    }
    v
}

/// Checks the absorption rule `0 ⊗ x = 0` (semiring, Definition 2.1).
pub fn absorption_law<S: Semiring + FiniteCarrier>() -> Vec<Violation> {
    let mut v = vec![];
    let zero = S::zero();
    for x in S::carrier() {
        check(
            &mut v,
            zero.mul(&x) == zero,
            || format!("0 ⊗ {x:?} = 0"),
            &x,
        );
    }
    v
}

/// Checks the absorptive-dioid law `x ⊕ 1 = 1` (every element 0-stable,
/// Sec. 5.1) on an explicit sample — the [`Absorptive`] contract for
/// structures whose carrier is infinite (`Trop⁺`, `MinNat`, …).
pub fn absorptive_laws_on<S: Absorptive>(sample: &[S]) -> Vec<Violation> {
    let mut v = vec![];
    let one = S::one();
    for x in sample {
        check(
            &mut v,
            x.add(&one) == one,
            || format!("absorptive: {x:?} ⊕ 1 = 1"),
            x,
        );
        // Equivalent reading used by the frontier engine: every element
        // sits below 1 in the natural order, so ⊗ never improves.
        check(&mut v, x.leq(&one), || format!("absorptive: {x:?} ⊑ 1"), x);
    }
    v
}

/// [`absorptive_laws_on`] over a full finite carrier.
pub fn absorptive_laws<S: Absorptive + FiniteCarrier>() -> Vec<Violation> {
    absorptive_laws_on(&S::carrier())
}

/// Checks the [`TotallyOrderedDioid`] contract on an explicit sample:
/// `chain_cmp` must be a total order that *coincides* with `⊑`
/// (`Less` ⟺ strictly below, `Equal` ⟺ equal), which also forces `⊑`
/// itself to be total on the sample.
pub fn chain_order_laws_on<S: TotallyOrderedDioid>(sample: &[S]) -> Vec<Violation> {
    use std::cmp::Ordering;
    let mut v = vec![];
    for x in sample {
        for y in sample {
            let c = x.chain_cmp(y);
            check(
                &mut v,
                (c == Ordering::Equal) == (x == y),
                || format!("chain_cmp Equal ⟺ == at {x:?}, {y:?}"),
                x,
            );
            check(
                &mut v,
                (c != Ordering::Greater) == x.leq(y),
                || format!("chain_cmp coincides with ⊑ at {x:?}, {y:?}"),
                x,
            );
            check(
                &mut v,
                c == y.chain_cmp(x).reverse(),
                || format!("chain_cmp antisymmetric at {x:?}, {y:?}"),
                x,
            );
            for z in sample {
                if x.chain_cmp(y) != Ordering::Greater && y.chain_cmp(z) != Ordering::Greater {
                    check(
                        &mut v,
                        x.chain_cmp(z) != Ordering::Greater,
                        || format!("chain_cmp transitive at {x:?}, {y:?}, {z:?}"),
                        x,
                    );
                }
            }
        }
    }
    v
}

/// [`chain_order_laws_on`] over a full finite carrier.
pub fn chain_order_laws<S: TotallyOrderedDioid + FiniteCarrier>() -> Vec<Violation> {
    chain_order_laws_on(&S::carrier())
}

/// Checks the POPS laws (Definition 2.3): partial order, minimum `⊥`,
/// monotone `⊕`/`⊗`, and strictness `x ⊗ ⊥ = ⊥`.
pub fn pops_laws<P: Pops + FiniteCarrier>() -> Vec<Violation> {
    let mut v = vec![];
    let c = P::carrier();
    let bot = P::bottom();
    for x in &c {
        check(&mut v, x.leq(x), || format!("reflexive {x:?}"), x);
        check(&mut v, bot.leq(x), || format!("⊥ ⊑ {x:?}"), x);
        for y in &c {
            check(
                &mut v,
                !(x.leq(y) && y.leq(x)) || x == y,
                || format!("antisymmetry {x:?} {y:?}"),
                x,
            );
            for z in &c {
                check(
                    &mut v,
                    !(x.leq(y) && y.leq(z)) || x.leq(z),
                    || format!("transitivity {x:?} {y:?} {z:?}"),
                    x,
                );
            }
        }
    }
    // Monotonicity of ⊕ and ⊗.
    for x in &c {
        for x2 in &c {
            if !x.leq(x2) {
                continue;
            }
            for y in &c {
                for y2 in &c {
                    if !y.leq(y2) {
                        continue;
                    }
                    check(
                        &mut v,
                        x.add(y).leq(&x2.add(y2)),
                        || format!("⊕ monotone {x:?}⊑{x2:?}, {y:?}⊑{y2:?}"),
                        x,
                    );
                    check(
                        &mut v,
                        x.mul(y).leq(&x2.mul(y2)),
                        || format!("⊗ monotone {x:?}⊑{x2:?}, {y:?}⊑{y2:?}"),
                        x,
                    );
                }
            }
        }
    }
    v
}

/// Checks strictness of `⊗` (`x ⊗ ⊥ = ⊥`) — assumed "throughout the paper
/// unless otherwise stated" (Sec. 2.1). `THREE` and `FOUR` are the stated
/// exceptions: there `0 ∧ ⊥ = 0`.
pub fn strictness_law<P: Pops + FiniteCarrier>() -> Vec<Violation> {
    let mut v = vec![];
    let bot = P::bottom();
    for x in P::carrier() {
        check(
            &mut v,
            x.mul(&bot) == bot,
            || format!("strictness {x:?} ⊗ ⊥ = ⊥"),
            &x,
        );
    }
    v
}

/// Checks dioid idempotency `a ⊕ a = a` (Sec. 6.1).
pub fn dioid_laws<S: Dioid + FiniteCarrier>() -> Vec<Violation> {
    let mut v = vec![];
    for x in S::carrier() {
        check(&mut v, x.add(&x) == x, || format!("{x:?} ⊕ x = x"), &x);
    }
    v
}

/// Whether `x ⪯ y` in the natural preorder: `∃z. x ⊕ z = y` (Sec. 2.1),
/// decided by enumeration of the finite carrier.
pub fn natural_preorder<S: PreSemiring + FiniteCarrier>(x: &S, y: &S) -> bool {
    S::carrier().iter().any(|z| &x.add(z) == y)
}

/// Checks that the POPS order coincides with the natural order and that
/// `⊥ = 0` (the [`NaturallyOrdered`] contract).
pub fn naturally_ordered_laws<S: NaturallyOrdered + FiniteCarrier>() -> Vec<Violation> {
    let mut v = vec![];
    check(
        &mut v,
        S::bottom() == S::zero(),
        || "⊥ = 0".to_string(),
        &(),
    );
    let c = S::carrier();
    for x in &c {
        for y in &c {
            check(
                &mut v,
                x.leq(y) == natural_preorder(x, y),
                || format!("⊑ = natural order at {x:?}, {y:?}"),
                x,
            );
        }
    }
    v
}

/// Checks Proposition 6.1 for dioids: `a ⊑ b ⟺ a ⊕ b = b`, and `⊕` is the
/// least upper bound of the natural order.
pub fn proposition_6_1<S: Dioid + Pops + FiniteCarrier>() -> Vec<Violation> {
    let mut v = vec![];
    let c = S::carrier();
    for a in &c {
        for b in &c {
            check(
                &mut v,
                a.leq(b) == (&a.add(b) == b),
                || format!("a ⊑ b ⟺ a⊕b=b at {a:?}, {b:?}"),
                a,
            );
            // a ⊕ b is an upper bound ...
            let s = a.add(b);
            check(
                &mut v,
                a.leq(&s) && b.leq(&s),
                || format!("⊕ ub {a:?} {b:?}"),
                a,
            );
            // ... and the least one.
            for u in &c {
                check(
                    &mut v,
                    !(a.leq(u) && b.leq(u)) || s.leq(u),
                    || format!("⊕ lub {a:?} {b:?} vs {u:?}"),
                    a,
                );
            }
        }
    }
    v
}

/// Checks the difference-operator laws: definition (58) against brute-force
/// meet, and Lemma 6.3's identities (59) and (60).
pub fn difference_laws<S: CompleteDistributiveDioid + FiniteCarrier>() -> Vec<Violation> {
    let mut v = vec![];
    let c = S::carrier();
    for b in &c {
        for a in &c {
            let d = b.minus(a);
            // (58): b ⊖ a = ⋀{c | a ⊕ c ⊒ b}; brute-force the meet.
            let candidates: Vec<&S> = c.iter().filter(|x| b.leq(&a.add(x))).collect();
            check(
                &mut v,
                candidates.contains(&&d),
                || format!("(58) witness: {b:?} ⊖ {a:?} = {d:?} must satisfy a ⊕ d ⊒ b"),
                b,
            );
            check(
                &mut v,
                candidates.iter().all(|x| d.leq(x)),
                || format!("(58) minimality of {b:?} ⊖ {a:?}"),
                b,
            );
            // (59): a ⊑ b ⟹ a ⊕ (b ⊖ a) = b.
            if a.leq(b) {
                check(
                    &mut v,
                    a.add(&d) == *b,
                    || format!("(59) at a={a:?} b={b:?}"),
                    b,
                );
            }
            // (60): (a ⊕ b) ⊖ (a ⊕ c) = b ⊖ (a ⊕ c).
            for x in &c {
                let lhs = a.add(b).minus(&a.add(x));
                let rhs = b.minus(&a.add(x));
                check(
                    &mut v,
                    lhs == rhs,
                    || format!("(60) at a={a:?} b={b:?} c={x:?}"),
                    b,
                );
            }
        }
    }
    v
}

/// Checks Proposition 5.2 on a finite semiring: if `1` is p-stable for some
/// `p ≤ |S|`, the natural preorder is antisymmetric (a partial order).
pub fn proposition_5_2<S: Semiring + FiniteCarrier>() -> Vec<Violation> {
    let mut v = vec![];
    let cap = S::carrier().len() + 1;
    if crate::stability::element_stability_index(&S::one(), cap).is_some() {
        let c = S::carrier();
        for x in &c {
            for y in &c {
                check(
                    &mut v,
                    !(natural_preorder(x, y) && natural_preorder(y, x)) || x == y,
                    || format!("natural order antisymmetric at {x:?}, {y:?}"),
                    x,
                );
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boolean::Bool;
    use crate::completed::Completed;
    use crate::four::Four;
    use crate::lifted::LiftedBool;
    use crate::powerset::PowerSet;
    use crate::three::Three;

    fn assert_clean(vs: Vec<Violation>, what: &str) {
        assert!(vs.is_empty(), "{what}: {:?}", &vs[..vs.len().min(5)]);
    }

    #[test]
    fn bool_all_laws() {
        assert_clean(pre_semiring_laws::<Bool>(), "bool pre-semiring");
        assert_clean(absorption_law::<Bool>(), "bool absorption");
        assert_clean(pops_laws::<Bool>(), "bool pops");
        assert_clean(strictness_law::<Bool>(), "bool strictness");
        assert_clean(dioid_laws::<Bool>(), "bool dioid");
        assert_clean(naturally_ordered_laws::<Bool>(), "bool natural order");
        assert_clean(proposition_6_1::<Bool>(), "bool prop 6.1");
        assert_clean(difference_laws::<Bool>(), "bool minus");
        assert_clean(proposition_5_2::<Bool>(), "bool prop 5.2");
        // The frontier-engine gates, exhaustively on the full carrier.
        assert_clean(absorptive_laws::<Bool>(), "bool absorptive");
        assert_clean(chain_order_laws::<Bool>(), "bool chain order");
    }

    /// A deliberately *wrong* pair of marker impls: max-plus naturals,
    /// which are a perfectly good totally ordered dioid but are **not**
    /// absorptive (`max(0, a) = a` for `a > 0`), wearing the
    /// `Absorptive` marker anyway — and a `chain_cmp` that disagrees
    /// with `⊑`. The law checkers must catch both; this is the gate that
    /// keeps a mis-marked POPS out of the engine's fast path.
    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    struct BadMaxNat(u64);

    impl PreSemiring for BadMaxNat {
        fn zero() -> Self {
            BadMaxNat(0)
        }
        fn one() -> Self {
            BadMaxNat(1)
        }
        fn add(&self, rhs: &Self) -> Self {
            BadMaxNat(self.0.max(rhs.0))
        }
        fn mul(&self, rhs: &Self) -> Self {
            BadMaxNat(self.0.saturating_mul(rhs.0))
        }
    }
    impl Semiring for BadMaxNat {}
    impl Dioid for BadMaxNat {}
    impl Pops for BadMaxNat {
        fn bottom() -> Self {
            BadMaxNat(0)
        }
        fn leq(&self, rhs: &Self) -> bool {
            self.0 <= rhs.0
        }
    }
    impl Absorptive for BadMaxNat {} // WRONG: max(1, 5) = 5 ≠ 1
    impl TotallyOrderedDioid for BadMaxNat {
        fn chain_cmp(&self, other: &Self) -> std::cmp::Ordering {
            other.0.cmp(&self.0) // WRONG: reversed against ⊑
        }
    }

    #[test]
    fn wrong_marker_impls_fail_the_law_gates() {
        let sample: Vec<BadMaxNat> = (0..6).map(BadMaxNat).collect();
        assert!(
            !absorptive_laws_on(&sample).is_empty(),
            "a non-absorptive dioid wearing Absorptive must be caught"
        );
        assert!(
            !chain_order_laws_on(&sample).is_empty(),
            "a chain_cmp disagreeing with ⊑ must be caught"
        );
    }

    #[test]
    fn three_laws() {
        assert_clean(pre_semiring_laws::<Three>(), "three pre-semiring");
        assert_clean(absorption_law::<Three>(), "three absorption");
        assert_clean(pops_laws::<Three>(), "three pops");
        assert_clean(dioid_laws::<Three>(), "three dioid");
        // THREE is the paper's stated exception to strictness: 0 ∧ ⊥ = 0.
        assert!(!strictness_law::<Three>().is_empty());
        // THREE is ordered by knowledge, NOT by its natural (truth) order:
        // 0 ⪯ 1 naturally (0 ∨ 1 = 1) but 0 ⋢_k 1.
        assert!(natural_preorder(&Three::False, &Three::True));
        assert!(!Three::False.leq(&Three::True));
    }

    #[test]
    fn four_laws() {
        assert_clean(pre_semiring_laws::<Four>(), "four pre-semiring");
        assert_clean(absorption_law::<Four>(), "four absorption");
        assert_clean(pops_laws::<Four>(), "four pops");
        assert_clean(dioid_laws::<Four>(), "four dioid");
        assert!(!strictness_law::<Four>().is_empty());
    }

    #[test]
    fn lifted_bool_laws() {
        assert_clean(pre_semiring_laws::<LiftedBool>(), "B⊥ pre-semiring");
        assert_clean(pops_laws::<LiftedBool>(), "B⊥ pops");
        assert_clean(strictness_law::<LiftedBool>(), "B⊥ strictness");
        // Lifted structures are not semirings: absorption fails at ⊥.
        use crate::traits::{Pops, PreSemiring};
        assert_ne!(
            LiftedBool::zero().mul(&LiftedBool::bottom()),
            LiftedBool::zero()
        );
    }

    #[test]
    fn completed_bool_laws() {
        assert_clean(pre_semiring_laws::<Completed<Bool>>(), "B⊥⊤ pre-semiring");
        assert_clean(pops_laws::<Completed<Bool>>(), "B⊥⊤ pops");
    }

    #[test]
    fn powerset_bool_laws() {
        assert_clean(pre_semiring_laws::<PowerSet<Bool>>(), "P(B) pre-semiring");
        assert_clean(pops_laws::<PowerSet<Bool>>(), "P(B) pops");
    }
}
