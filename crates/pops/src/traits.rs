//! The algebraic trait hierarchy of the paper (Sec. 2).
//!
//! ```text
//! PreSemiring ─── Semiring ─┬─ NaturallyOrdered (marker; requires Pops)
//!       │                   ├─ Dioid ── CompleteDistributiveDioid (requires Pops)
//!       │                   └─ StarSemiring / UniformlyStable
//!       └─ Pops (adds ⊥ and the partial order ⊑, decoupled from the algebra)
//! ```
//!
//! All operations take `&self` and are pure. Elements must be `Eq` so that
//! fixpoint iteration can detect convergence exactly, and `Hash + Ord` so
//! they can be used in deterministic containers and law checkers.

use std::fmt::Debug;
use std::hash::Hash;

/// A commutative pre-semiring `(S, ⊕, ⊗, 0, 1)` (Definition 2.1).
///
/// `(S, ⊕, 0)` is a commutative monoid, `(S, ⊗, 1)` is a commutative monoid
/// (the paper only considers commutative pre-semirings), and `⊗` distributes
/// over `⊕`. The absorption rule `0 ⊗ x = 0` is **not** required; structures
/// for which it holds additionally implement the [`Semiring`] marker.
pub trait PreSemiring: Clone + Eq + Ord + Hash + Debug + 'static {
    /// The additive identity `0`.
    fn zero() -> Self;
    /// The multiplicative identity `1`.
    fn one() -> Self;
    /// Addition `⊕`.
    fn add(&self, rhs: &Self) -> Self;
    /// Multiplication `⊗`.
    fn mul(&self, rhs: &Self) -> Self;

    /// Whether this element equals `0`.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }
    /// Whether this element equals `1`.
    fn is_one(&self) -> bool {
        *self == Self::one()
    }

    /// `self^k` with the convention `a^0 = 1` (Sec. 2.2).
    fn pow(&self, k: u32) -> Self {
        let mut acc = Self::one();
        for _ in 0..k {
            acc = acc.mul(self);
        }
        acc
    }

    /// `⊕`-fold of an iterator (empty sum is `0`).
    fn sum<'a, I: IntoIterator<Item = &'a Self>>(iter: I) -> Self
    where
        Self: 'a,
    {
        iter.into_iter().fold(Self::zero(), |acc, x| acc.add(x))
    }

    /// `⊗`-fold of an iterator (empty product is `1`).
    fn product<'a, I: IntoIterator<Item = &'a Self>>(iter: I) -> Self
    where
        Self: 'a,
    {
        iter.into_iter().fold(Self::one(), |acc, x| acc.mul(x))
    }
}

/// Marker: the absorption rule `0 ⊗ x = 0` holds, making this a semiring
/// (Definition 2.1).
pub trait Semiring: PreSemiring {}

/// A partially ordered pre-semiring (POPS, Definition 2.3).
///
/// `(P, ⊑)` is a poset with minimum element `⊥`, and `⊕`, `⊗` are monotone
/// under `⊑`. Throughout the paper (and this library) `⊗` is assumed
/// *strict*: `x ⊗ ⊥ = ⊥`.
pub trait Pops: PreSemiring {
    /// The least element `⊥` of the partial order.
    fn bottom() -> Self;
    /// The partial order `self ⊑ rhs`.
    fn leq(&self, rhs: &Self) -> bool;

    /// Whether this element equals `⊥`.
    fn is_bottom(&self) -> bool {
        *self == Self::bottom()
    }

    /// Strict order `self ⊏ rhs`.
    fn strictly_below(&self, rhs: &Self) -> bool {
        self != rhs && self.leq(rhs)
    }
}

/// Marker: this POPS is a *naturally ordered semiring*: the POPS order `⊑`
/// coincides with the natural order `x ⪯ y ⟺ ∃z. x ⊕ z = y`, and `⊥ = 0`
/// (Sec. 2.1/2.5). For such structures the core semiring `P ⊕ ⊥` is `P`
/// itself.
pub trait NaturallyOrdered: Semiring + Pops {}

/// Marker: `⊕` is idempotent (`a ⊕ a = a`), making this semiring a *dioid*
/// (Sec. 6.1). By Proposition 6.1 a dioid is naturally ordered and `⊕` is the
/// least upper bound of its natural order.
pub trait Dioid: Semiring {}

/// Marker: the dioid is **absorptive** (`x ⊕ 1 = 1` for every `x`; also
/// called *bounded*, *simple*, or — in the paper's terms — every element
/// is **0-stable**, Sec. 5.1). By Corollary 5.19 every datalog° program
/// over such a semiring is `N`-stable: each ground fact's value strictly
/// improves at most `N` times before it settles. This is the law that
/// licenses *worklist* (frontier) evaluation in `dlo_engine`: a per-fact
/// change queue is guaranteed to drain, so no global iteration count is
/// needed for termination.
///
/// The contract is checked by [`crate::checker::absorptive_laws`]
/// (exhaustively on finite carriers) and
/// [`crate::checker::absorptive_laws_on`] (on samples of infinite ones);
/// a wrong impl fails those tests rather than silently producing
/// unsettled fixpoints. Counter-example: [`crate::maxplus::MaxPlus`] is
/// a complete distributive dioid whose positive elements are *not*
/// 0-stable (`max(0, a) = a` for `a > 0`), so it must **not** implement
/// this marker.
pub trait Absorptive: Dioid + Pops {}

/// A dioid whose natural order `⊑` is **total**, with the order exposed
/// as a comparator so schedulers can rank values.
///
/// Combined with [`Absorptive`] this is the precondition for
/// *Dijkstra-style* priority-frontier evaluation (`dlo_engine`'s
/// `Strategy::Priority`): because `⊗` never moves a value up the chain
/// (`x ⊗ y ⊑ x ⊗ 1 = x` by monotonicity and absorption), the
/// ⊑-greatest pending fact can never be improved by any future
/// derivation and is *settled* the moment it is popped.
///
/// The contract — `chain_cmp` is a total order that coincides with `⊑`
/// — is checked by [`crate::checker::chain_order_laws`] /
/// [`crate::checker::chain_order_laws_on`].
pub trait TotallyOrderedDioid: Dioid + Pops {
    /// The total order: `Less` ⟺ `self ⊏ other` (strictly below in the
    /// natural order, i.e. strictly *worse*), `Equal` ⟺ `self == other`.
    fn chain_cmp(&self, other: &Self) -> std::cmp::Ordering;
}

/// A POPS that is a *complete distributive dioid* (Definition 6.2): `⊑` is
/// the dioid's natural order and `(S, ⊑)` is a complete distributive
/// lattice. Provides the difference operator
/// `b ⊖ a = ⋀ { c | a ⊕ c ⊒ b }` (eq. 58), which powers semi-naïve
/// evaluation (Sec. 6).
pub trait CompleteDistributiveDioid: Dioid + Pops {
    /// `self ⊖ rhs` per eq. (58). Satisfies eq. (59) and (60) (Lemma 6.3):
    /// `a ⊑ b ⟹ a ⊕ (b ⊖ a) = b` and `(a ⊕ b) ⊖ (a ⊕ c) = b ⊖ (a ⊕ c)`.
    fn minus(&self, rhs: &Self) -> Self;
}

/// A semiring with a closure (star) operation `a* = ⨁_{i≥0} a^i`.
///
/// For a `p`-stable semiring `a* = a^(p) = 1 ⊕ a ⊕ … ⊕ a^p` (Sec. 5.5);
/// this is what makes the Floyd–Warshall–Kleene algorithm and Algorithm 2
/// (`LinearLFP`) applicable.
pub trait StarSemiring: Semiring {
    /// The Kleene star `a*`.
    fn star(&self) -> Self;
}

/// A uniformly stable ("p-stable") semiring (Definition 5.1): there is a
/// single `p` such that every element `u` satisfies `u^(p) = u^(p+1)` where
/// `u^(p) = 1 ⊕ u ⊕ u² ⊕ … ⊕ u^p`.
pub trait UniformlyStable: Semiring {
    /// The uniform stability index `p`.
    fn uniform_stability_index() -> usize;
}

/// A structure with a finite, enumerable carrier. Used by the exhaustive law
/// checker ([`crate::checker`]) and by exhaustive tests.
pub trait FiniteCarrier: Sized {
    /// Every element of the carrier, in a deterministic order.
    fn carrier() -> Vec<Self>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boolean::Bool;

    #[test]
    fn pow_zero_is_one() {
        assert_eq!(Bool(false).pow(0), Bool(true));
        assert_eq!(Bool(true).pow(0), Bool(true));
    }

    #[test]
    fn pow_repeats_mul() {
        assert_eq!(Bool(false).pow(3), Bool(false));
        assert_eq!(Bool(true).pow(3), Bool(true));
    }

    #[test]
    fn empty_sum_and_product() {
        let empty: [Bool; 0] = [];
        assert_eq!(Bool::sum(empty.iter()), Bool::zero());
        assert_eq!(Bool::product(empty.iter()), Bool::one());
    }

    #[test]
    fn sum_and_product_fold() {
        let xs = [Bool(false), Bool(true), Bool(false)];
        assert_eq!(Bool::sum(xs.iter()), Bool(true));
        assert_eq!(Bool::product(xs.iter()), Bool(false));
    }

    #[test]
    fn strictly_below_is_strict() {
        use crate::traits::Pops;
        assert!(Bool(false).strictly_below(&Bool(true)));
        assert!(!Bool(true).strictly_below(&Bool(true)));
        assert!(!Bool(true).strictly_below(&Bool(false)));
    }
}
