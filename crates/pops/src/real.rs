//! The semiring of reals `(ℝ, +, ×, 0, 1)` (Example 2.2).
//!
//! `ℝ` is **not** naturally ordered (`x ⪯ y` holds for every pair), so it is
//! not a POPS by itself; by Lemma 2.8 *no* POPS extension of `ℝ` can be a
//! semiring. Its role in the paper is as the base of the lifted reals
//! `ℝ_⊥ = Lifted<Real>` (the bill-of-material POPS, Example 4.2).

use crate::f64total::F64;
use crate::traits::*;

/// A real semiring element (finite `f64`, NaN-free).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Real(pub F64);

impl Real {
    /// Constructs from an `f64` (must be finite, non-NaN).
    pub fn of(x: f64) -> Real {
        assert!(x.is_finite(), "Real::of requires a finite value");
        Real(F64::of(x))
    }
    /// The underlying `f64`.
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

impl PreSemiring for Real {
    fn zero() -> Self {
        Real(F64::ZERO)
    }
    fn one() -> Self {
        Real(F64::ONE)
    }
    fn add(&self, rhs: &Self) -> Self {
        Real(self.0.add(rhs.0))
    }
    fn mul(&self, rhs: &Self) -> Self {
        Real(self.0.mul(rhs.0))
    }
}

impl Semiring for Real {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_arithmetic() {
        assert_eq!(Real::of(2.5).add(&Real::of(0.5)), Real::of(3.0));
        assert_eq!(Real::of(2.0).mul(&Real::of(-3.0)), Real::of(-6.0));
        assert_eq!(Real::zero().mul(&Real::of(9.0)), Real::zero());
    }

    #[test]
    #[should_panic]
    fn infinite_rejected() {
        Real::of(f64::INFINITY);
    }
}
