//! The non-negative reals `(ℝ₊ ∪ {∞}, +, ×, 0, 1)` with the natural order.
//!
//! Restricting `ℝ` to `ℝ₊` makes the natural order antisymmetric
//! (`x ⪯ y ⟺ x ≤ y`), so unlike `ℝ` this **is** a naturally ordered
//! semiring POPS. It is the value space of the company-control program
//! (Example 4.3), where the Boolean IDB is encoded through the monotone
//! threshold indicator `[x > c] : ℝ₊ → ℝ₊`. Not stable (`1 + x + x² + …`
//! diverges for `x ≥ 1`), so programs over it converge only when their
//! recursion dies out — caps apply.

use crate::f64total::F64;
use crate::traits::*;

/// A non-negative real (with `∞` as the limit / top).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NNReal(pub F64);

impl NNReal {
    /// Constructs from a non-negative `f64`.
    pub fn of(x: f64) -> NNReal {
        assert!(x >= 0.0, "NNReal requires non-negative values, got {x}");
        NNReal(F64::of(x))
    }
    /// The underlying value.
    pub fn get(&self) -> f64 {
        self.0.get()
    }
    /// The monotone threshold indicator `[x > c]` (Example 4.3's bridge
    /// between value spaces): `1` if `x > c`, else `0`.
    pub fn threshold(&self, c: f64) -> NNReal {
        if self.get() > c {
            NNReal::of(1.0)
        } else {
            NNReal::of(0.0)
        }
    }
}

impl PreSemiring for NNReal {
    fn zero() -> Self {
        NNReal(F64::ZERO)
    }
    fn one() -> Self {
        NNReal(F64::ONE)
    }
    fn add(&self, rhs: &Self) -> Self {
        NNReal(self.0.add(rhs.0))
    }
    fn mul(&self, rhs: &Self) -> Self {
        NNReal(self.0.mul(rhs.0))
    }
}

impl Semiring for NNReal {}
impl NaturallyOrdered for NNReal {}

impl Pops for NNReal {
    fn bottom() -> Self {
        NNReal(F64::ZERO)
    }
    fn leq(&self, rhs: &Self) -> bool {
        self.0 <= rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semiring_ops() {
        assert_eq!(NNReal::of(1.5).add(&NNReal::of(2.0)), NNReal::of(3.5));
        assert_eq!(NNReal::of(1.5).mul(&NNReal::of(2.0)), NNReal::of(3.0));
        assert_eq!(NNReal::zero().mul(&NNReal::of(9.0)), NNReal::zero());
    }

    #[test]
    fn natural_order_is_leq() {
        assert!(NNReal::of(0.0).leq(&NNReal::of(0.5)));
        assert!(!NNReal::of(0.6).leq(&NNReal::of(0.5)));
        assert!(NNReal::bottom().is_zero());
    }

    #[test]
    fn threshold_is_monotone() {
        let xs = [0.0, 0.3, 0.5, 0.500001, 0.9, 2.0];
        for w in xs.windows(2) {
            let a = NNReal::of(w[0]).threshold(0.5);
            let b = NNReal::of(w[1]).threshold(0.5);
            assert!(a.leq(&b));
        }
        assert_eq!(NNReal::of(0.5).threshold(0.5), NNReal::of(0.0));
        assert_eq!(NNReal::of(0.51).threshold(0.5), NNReal::of(1.0));
    }

    #[test]
    fn not_stable_above_one() {
        use crate::stability::element_stability_index;
        assert_eq!(element_stability_index(&NNReal::of(1.0), 40), None);
        // but 0 is 0-stable:
        assert_eq!(element_stability_index(&NNReal::of(0.0), 40), Some(0));
    }
}
