//! The POPS `THREE` (Sec. 2.5.2): Kleene's strong three-valued logic under
//! the *knowledge* order.
//!
//! Carrier `{⊥, 0, 1}`; `∨`/`∧` are max/min in the **truth** order
//! `0 ≤_t ⊥ ≤_t 1`, while the POPS order is the **knowledge** order
//! `⊥ <_k 0`, `⊥ <_k 1` (0 and 1 incomparable). Unlike the lifted Booleans,
//! `0 ∧ ⊥ = 0`, so absorption holds and `THREE` **is** a semiring. Its core
//! `THREE ∨ ⊥ = {⊥, 1} ≅ 𝔹`.
//!
//! The monotone (w.r.t. `≤_k`) negation `not(0)=1, not(1)=0, not(⊥)=⊥`
//! lets datalog° express datalog with negation under Fitting's three-valued
//! semantics (Sec. 7).

use crate::traits::*;

/// A truth value of Kleene's three-valued logic.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Three {
    /// Undefined (`⊥`): least in the knowledge order.
    Undef,
    /// False (`0`).
    False,
    /// True (`1`).
    True,
}

impl Three {
    /// Position in the truth order `0 ≤_t ⊥ ≤_t 1`.
    fn truth_rank(self) -> u8 {
        match self {
            Three::False => 0,
            Three::Undef => 1,
            Three::True => 2,
        }
    }

    /// Kleene negation — monotone in the knowledge order.
    #[allow(clippy::should_implement_trait)] // domain operation, not std::ops::Not
    pub fn not(self) -> Three {
        match self {
            Three::Undef => Three::Undef,
            Three::False => Three::True,
            Three::True => Three::False,
        }
    }

    /// Embeds a classical Boolean.
    pub fn from_bool(b: bool) -> Three {
        if b {
            Three::True
        } else {
            Three::False
        }
    }
}

impl PreSemiring for Three {
    fn zero() -> Self {
        Three::False
    }
    fn one() -> Self {
        Three::True
    }
    /// `∨` = max in the truth order.
    fn add(&self, rhs: &Self) -> Self {
        if self.truth_rank() >= rhs.truth_rank() {
            *self
        } else {
            *rhs
        }
    }
    /// `∧` = min in the truth order.
    fn mul(&self, rhs: &Self) -> Self {
        if self.truth_rank() <= rhs.truth_rank() {
            *self
        } else {
            *rhs
        }
    }
}

impl Semiring for Three {}
impl Dioid for Three {}

impl Pops for Three {
    fn bottom() -> Self {
        Three::Undef
    }
    /// The knowledge order `⊥ <_k 0`, `⊥ <_k 1`.
    fn leq(&self, rhs: &Self) -> bool {
        *self == Three::Undef || self == rhs
    }
}

impl FiniteCarrier for Three {
    fn carrier() -> Vec<Self> {
        vec![Three::Undef, Three::False, Three::True]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kleene_tables() {
        use Three::*;
        // ∨
        assert_eq!(False.add(&Undef), Undef);
        assert_eq!(True.add(&Undef), True);
        assert_eq!(False.add(&False), False);
        // ∧
        assert_eq!(False.mul(&Undef), False); // absorption — unlike B⊥
        assert_eq!(True.mul(&Undef), Undef);
        assert_eq!(True.mul(&True), True);
    }

    #[test]
    fn absorption_makes_it_a_semiring() {
        use Three::*;
        for x in Three::carrier() {
            assert_eq!(False.mul(&x), False, "0 ∧ {x:?} must be 0");
        }
    }

    #[test]
    fn knowledge_order() {
        use Three::*;
        assert!(Undef.leq(&False));
        assert!(Undef.leq(&True));
        assert!(!False.leq(&True));
        assert!(!True.leq(&False));
        assert_eq!(Three::bottom(), Undef);
    }

    #[test]
    fn ops_monotone_in_knowledge_order() {
        for x in Three::carrier() {
            for x2 in Three::carrier() {
                if !x.leq(&x2) {
                    continue;
                }
                for y in Three::carrier() {
                    for y2 in Three::carrier() {
                        if !y.leq(&y2) {
                            continue;
                        }
                        assert!(x.add(&y).leq(&x2.add(&y2)), "∨ monotone");
                        assert!(x.mul(&y).leq(&x2.mul(&y2)), "∧ monotone");
                    }
                }
            }
        }
    }

    #[test]
    fn not_is_monotone_and_involutive() {
        use Three::*;
        assert_eq!(Undef.not(), Undef);
        assert_eq!(False.not(), True);
        assert_eq!(True.not(), False);
        for x in Three::carrier() {
            assert_eq!(x.not().not(), x);
            for y in Three::carrier() {
                if x.leq(&y) {
                    assert!(x.not().leq(&y.not()), "not monotone in ≤k");
                }
            }
        }
    }

    #[test]
    fn core_semiring_is_bottom_and_true() {
        // THREE ∨ ⊥ = {x ∨ ⊥ | x} = {⊥, 1} ≅ B.
        use std::collections::BTreeSet;
        let core: BTreeSet<Three> = Three::carrier()
            .into_iter()
            .map(|x| x.add(&Three::Undef))
            .collect();
        assert_eq!(
            core.into_iter().collect::<Vec<_>>(),
            vec![Three::Undef, Three::True]
        );
    }
}
