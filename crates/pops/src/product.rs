//! The Cartesian product of two POPS (Sec. 2.5.4, Example 2.11).
//!
//! Operations and order are component-wise; `⊥ = (⊥₁, ⊥₂)`. The product is
//! the paper's vehicle for exhibiting a *non-trivial core semiring*: for a
//! naturally ordered semiring `S` and a strict-⊕ POPS `P` (e.g. a lifted
//! semiring), the core of `S × P` is `S × {⊥_P}` — neither trivial nor the
//! whole structure.

use crate::traits::*;

/// A pair in the product POPS `P1 × P2`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Product<A, B>(pub A, pub B);

impl<A: PreSemiring, B: PreSemiring> PreSemiring for Product<A, B> {
    fn zero() -> Self {
        Product(A::zero(), B::zero())
    }
    fn one() -> Self {
        Product(A::one(), B::one())
    }
    fn add(&self, rhs: &Self) -> Self {
        Product(self.0.add(&rhs.0), self.1.add(&rhs.1))
    }
    fn mul(&self, rhs: &Self) -> Self {
        Product(self.0.mul(&rhs.0), self.1.mul(&rhs.1))
    }
}

impl<A: Semiring, B: Semiring> Semiring for Product<A, B> {}
impl<A: Dioid, B: Dioid> Dioid for Product<A, B> {}

impl<A: Pops, B: Pops> Pops for Product<A, B> {
    fn bottom() -> Self {
        Product(A::bottom(), B::bottom())
    }
    fn leq(&self, rhs: &Self) -> bool {
        self.0.leq(&rhs.0) && self.1.leq(&rhs.1)
    }
}

impl<A: FiniteCarrier + Clone, B: FiniteCarrier + Clone> FiniteCarrier for Product<A, B> {
    fn carrier() -> Vec<Self> {
        let bs = B::carrier();
        A::carrier()
            .into_iter()
            .flat_map(|a| bs.iter().map(move |b| Product(a.clone(), b.clone())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boolean::Bool;
    use crate::lifted::{Bot, LiftedNat, Val};
    use crate::nat::Nat;
    use crate::trop::Trop;

    #[test]
    fn componentwise_ops() {
        let x = Product(Trop::finite(3.0), Bool(true));
        let y = Product(Trop::finite(5.0), Bool(false));
        assert_eq!(x.add(&y), Product(Trop::finite(3.0), Bool(true)));
        assert_eq!(x.mul(&y), Product(Trop::finite(8.0), Bool(false)));
    }

    #[test]
    fn componentwise_order() {
        let bot = Product::<Trop, Bool>::bottom();
        assert_eq!(bot, Product(Trop::INF, Bool(false)));
        assert!(bot.leq(&Product(Trop::finite(1.0), Bool(true))));
        let x = Product(Trop::finite(1.0), Bool(false));
        let y = Product(Trop::finite(2.0), Bool(true));
        assert!(!x.leq(&y), "first component 1 ⋢ 2 in Trop (reverse order)");
        assert!(y.leq(&Product(Trop::finite(1.0), Bool(true))));
    }

    /// Example 2.11: core of S × P with S = ℕ (naturally ordered) and
    /// P = ℕ_⊥ (strict ⊕) is ℕ × {⊥}.
    #[test]
    fn nontrivial_core_semiring() {
        type E = Product<Nat, LiftedNat>;
        let bottom = E::bottom();
        assert_eq!(bottom, Product(Nat(0), Bot));
        // x ⊕ ⊥ keeps the first component, collapses the second to ⊥:
        for (a, b) in [(Nat(0), Val(Nat(3))), (Nat(7), Bot), (Nat(2), Val(Nat(0)))] {
            let x = Product(a, b);
            let in_core = x.add(&bottom);
            assert_eq!(in_core, Product(a, Bot));
        }
    }
}
