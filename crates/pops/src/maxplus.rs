//! The max-plus (longest-path) dioid `(ℝ ∪ {±∞}, max, +, -∞, 0)`.
//!
//! The dual of the tropical semiring. It is a complete distributive dioid
//! (so semi-naïve applies) but **not stable**: any element `a > 0` has
//! `a^(p) = max(0, a, …, pa) = pa` strictly increasing, so datalog°
//! programs with positive cycles diverge — our stock divergence workload on
//! an otherwise well-behaved dioid.

use crate::f64total::F64;
use crate::traits::*;

/// A gain in `ℝ ∪ {±∞}`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MaxPlus(pub F64);

impl MaxPlus {
    /// `-∞`, the additive identity (= `⊥`).
    pub const NEG_INF: MaxPlus = MaxPlus(F64::NEG_INFINITY);
    /// `+∞`, the top element (needed for completeness of the lattice).
    pub const POS_INF: MaxPlus = MaxPlus(F64::INFINITY);

    /// A finite gain.
    pub fn finite(x: f64) -> MaxPlus {
        assert!(x.is_finite());
        MaxPlus(F64::of(x))
    }
}

impl PreSemiring for MaxPlus {
    fn zero() -> Self {
        MaxPlus::NEG_INF
    }
    fn one() -> Self {
        MaxPlus(F64::ZERO)
    }
    fn add(&self, rhs: &Self) -> Self {
        MaxPlus(self.0.max(rhs.0))
    }
    fn mul(&self, rhs: &Self) -> Self {
        // -∞ absorbs (even against +∞: -∞ + x = -∞).
        if self.0 == F64::NEG_INFINITY || rhs.0 == F64::NEG_INFINITY {
            return MaxPlus::NEG_INF;
        }
        MaxPlus(self.0.add(rhs.0))
    }
}

impl Semiring for MaxPlus {}
impl Dioid for MaxPlus {}
impl NaturallyOrdered for MaxPlus {}

// Deliberately NOT `Absorptive`: `max(0, a) = a ≠ 0` for `a > 0`, so
// positive elements are not 0-stable and worklist termination is not
// guaranteed (positive cycles improve forever). The natural order is
// still total, so MaxPlus can rank values — engines may use the order,
// but the Dijkstra settled-on-pop argument does not apply.
impl TotallyOrderedDioid for MaxPlus {
    fn chain_cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl Pops for MaxPlus {
    fn bottom() -> Self {
        MaxPlus::NEG_INF
    }
    fn leq(&self, rhs: &Self) -> bool {
        self.0 <= rhs.0
    }
}

impl CompleteDistributiveDioid for MaxPlus {
    fn minus(&self, rhs: &Self) -> Self {
        // b ⊖ a = ⋀{c | max(a,c) ≥ b} = -∞ if a ≥ b else b.
        if rhs.0 >= self.0 {
            MaxPlus::NEG_INF
        } else {
            *self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stability::element_stability_index;

    #[test]
    fn max_plus_ops() {
        assert_eq!(
            MaxPlus::finite(3.0).add(&MaxPlus::finite(5.0)),
            MaxPlus::finite(5.0)
        );
        assert_eq!(
            MaxPlus::finite(3.0).mul(&MaxPlus::finite(5.0)),
            MaxPlus::finite(8.0)
        );
        assert_eq!(
            MaxPlus::NEG_INF.mul(&MaxPlus::finite(5.0)),
            MaxPlus::NEG_INF
        );
    }

    #[test]
    fn positive_elements_unstable() {
        assert_eq!(element_stability_index(&MaxPlus::finite(1.0), 50), None);
        // Non-positive gains are 0-stable: max(0, a) = 0.
        assert_eq!(element_stability_index(&MaxPlus::finite(-2.0), 50), Some(0));
        assert_eq!(element_stability_index(&MaxPlus::finite(0.0), 50), Some(0));
    }

    #[test]
    fn chain_order_law_holds_but_absorption_fails() {
        let sample: Vec<MaxPlus> = [-2.0, 0.0, 1.0, 5.0]
            .iter()
            .map(|&c| MaxPlus::finite(c))
            .chain([MaxPlus::NEG_INF, MaxPlus::POS_INF])
            .collect();
        // The total order is sound…
        let v = crate::checker::chain_order_laws_on(&sample);
        assert!(v.is_empty(), "{v:?}");
        // …but `x ⊕ 1 = 1` fails for positive gains, which is exactly
        // why MaxPlus must not carry the `Absorptive` marker: a
        // worklist over it has no termination guarantee.
        assert_ne!(MaxPlus::finite(5.0).add(&MaxPlus::one()), MaxPlus::one());
    }

    #[test]
    fn minus_dual_of_trop() {
        assert_eq!(
            MaxPlus::finite(5.0).minus(&MaxPlus::finite(3.0)),
            MaxPlus::finite(5.0)
        );
        assert_eq!(
            MaxPlus::finite(3.0).minus(&MaxPlus::finite(5.0)),
            MaxPlus::NEG_INF
        );
    }
}
