//! `ℕ × ℕ` with pairwise arithmetic and the *lexicographic* order
//! (Sec. 4.2 case (i)).
//!
//! The paper's witness that `⋁_t J(t)` need not be a fixpoint: with
//! `F(x, y) = (x, y+1)`, the chain `(0,0) ⊑ (0,1) ⊑ (0,2) ⊑ …` has least
//! upper bound `(1, 0)`, which is not a fixpoint — indeed `F` has no
//! fixpoint at all.
//!
//! Caveat (inherited from the paper's example): `⊗` is not monotone w.r.t.
//! the lexicographic order in general (e.g. `(1,5) ⊑ (2,0)` but multiplying
//! by `(0,1)` gives `(0,5) ⋢ (0,0)`); the case-(i) construction only uses
//! `⊕` with constants, which *is* monotone. The structure is exposed for
//! that demonstration and excluded from the generic monotonicity laws.

use crate::traits::*;

/// A pair in `ℕ × ℕ` under the lexicographic order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NatPairLex(pub u64, pub u64);

impl PreSemiring for NatPairLex {
    fn zero() -> Self {
        NatPairLex(0, 0)
    }
    fn one() -> Self {
        NatPairLex(1, 1)
    }
    fn add(&self, rhs: &Self) -> Self {
        NatPairLex(self.0.saturating_add(rhs.0), self.1.saturating_add(rhs.1))
    }
    fn mul(&self, rhs: &Self) -> Self {
        NatPairLex(self.0.saturating_mul(rhs.0), self.1.saturating_mul(rhs.1))
    }
}

impl Semiring for NatPairLex {}

impl Pops for NatPairLex {
    fn bottom() -> Self {
        NatPairLex(0, 0)
    }
    /// Lexicographic: `(x,y) ⊑ (u,v)` iff `x < u`, or `x = u ∧ y ≤ v`.
    fn leq(&self, rhs: &Self) -> bool {
        self.0 < rhs.0 || (self.0 == rhs.0 && self.1 <= rhs.1)
    }
}

/// The case-(i) function `F(x, y) = (x, y + 1)`.
pub fn case_i_ico(p: NatPairLex) -> NatPairLex {
    NatPairLex(p.0, p.1.saturating_add(1))
}

/// Least upper bound of the chain `F^(t)(⊥) = (0, t)`: `(1, 0)`.
pub fn case_i_chain_lub() -> NatPairLex {
    NatPairLex(1, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_order() {
        assert!(NatPairLex(0, 99).leq(&NatPairLex(1, 0)));
        assert!(NatPairLex(1, 0).leq(&NatPairLex(1, 5)));
        assert!(!NatPairLex(1, 5).leq(&NatPairLex(1, 0)));
    }

    #[test]
    fn case_i_lub_is_not_a_fixpoint() {
        // Every chain element is below (1,0)...
        let mut x = NatPairLex::bottom();
        for _ in 0..50 {
            assert!(x.leq(&case_i_chain_lub()));
            x = case_i_ico(x);
        }
        // ...and (1,0) is the least upper bound but not a fixpoint:
        let lub = case_i_chain_lub();
        assert_ne!(case_i_ico(lub), lub, "F(1,0) = (1,1) ≠ (1,0)");
        // No (x, y) is a fixpoint: y + 1 ≠ y (modulo saturation guard).
        for x0 in 0..4 {
            for y0 in 0..4 {
                let p = NatPairLex(x0, y0);
                assert_ne!(case_i_ico(p), p);
            }
        }
    }

    #[test]
    fn addition_by_constant_is_monotone() {
        let c = NatPairLex(0, 1);
        let pairs = [
            (NatPairLex(0, 3), NatPairLex(1, 0)),
            (NatPairLex(2, 2), NatPairLex(2, 5)),
        ];
        for (a, b) in pairs {
            assert!(a.leq(&b));
            assert!(a.add(&c).leq(&b.add(&c)));
        }
    }

    #[test]
    fn mul_monotonicity_fails_as_documented() {
        let a = NatPairLex(1, 5);
        let b = NatPairLex(2, 0);
        let c = NatPairLex(0, 1);
        assert!(a.leq(&b));
        assert!(!a.mul(&c).leq(&b.mul(&c)), "(0,5) ⋢ (0,0)");
    }
}
