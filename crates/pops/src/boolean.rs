//! The Boolean semiring `𝔹 = ({0,1}, ∨, ∧, 0, 1)` (Example 2.2).
//!
//! Standard relations are `𝔹`-relations; datalog° over `𝔹` is plain datalog.
//! `𝔹` is a 0-stable complete distributive dioid, naturally ordered by
//! `0 ⪯ 1`, with difference `b ⊖ a = b ∧ ¬a` (classical semi-naïve).

use crate::traits::*;

/// A Boolean semiring element.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Bool(pub bool);

impl Bool {
    /// The constant `true` (= `1`).
    pub const TRUE: Bool = Bool(true);
    /// The constant `false` (= `0`).
    pub const FALSE: Bool = Bool(false);
}

impl PreSemiring for Bool {
    fn zero() -> Self {
        Bool(false)
    }
    fn one() -> Self {
        Bool(true)
    }
    fn add(&self, rhs: &Self) -> Self {
        Bool(self.0 || rhs.0)
    }
    fn mul(&self, rhs: &Self) -> Self {
        Bool(self.0 && rhs.0)
    }
}

impl Semiring for Bool {}
impl Dioid for Bool {}
impl NaturallyOrdered for Bool {}
// `x ∨ 1 = 1`: 𝔹 is 0-stable (plain datalog saturates).
impl Absorptive for Bool {}

impl TotallyOrderedDioid for Bool {
    fn chain_cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl Pops for Bool {
    fn bottom() -> Self {
        Bool(false)
    }
    fn leq(&self, rhs: &Self) -> bool {
        !self.0 || rhs.0
    }
}

impl CompleteDistributiveDioid for Bool {
    fn minus(&self, rhs: &Self) -> Self {
        // b ⊖ a = ⋀{c | a ∨ c ⊒ b} = b ∧ ¬a
        Bool(self.0 && !rhs.0)
    }
}

impl StarSemiring for Bool {
    fn star(&self) -> Self {
        // 1 ∨ a ∨ a² ∨ … = 1
        Bool(true)
    }
}

impl UniformlyStable for Bool {
    fn uniform_stability_index() -> usize {
        0 // 1 ∨ u = 1 for all u
    }
}

impl FiniteCarrier for Bool {
    fn carrier() -> Vec<Self> {
        vec![Bool(false), Bool(true)]
    }
}

impl From<bool> for Bool {
    fn from(b: bool) -> Self {
        Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stability::element_stability_index;

    #[test]
    fn semiring_ops() {
        assert_eq!(Bool(true).add(&Bool(false)), Bool(true));
        assert_eq!(Bool(false).add(&Bool(false)), Bool(false));
        assert_eq!(Bool(true).mul(&Bool(false)), Bool(false));
        assert_eq!(Bool(true).mul(&Bool(true)), Bool(true));
    }

    #[test]
    fn order_is_implication() {
        assert!(Bool(false).leq(&Bool(true)));
        assert!(Bool(false).leq(&Bool(false)));
        assert!(!Bool(true).leq(&Bool(false)));
    }

    #[test]
    fn minus_is_and_not() {
        assert_eq!(Bool(true).minus(&Bool(false)), Bool(true));
        assert_eq!(Bool(true).minus(&Bool(true)), Bool(false));
        assert_eq!(Bool(false).minus(&Bool(true)), Bool(false));
        assert_eq!(Bool(false).minus(&Bool(false)), Bool(false));
    }

    #[test]
    fn zero_stable() {
        for b in Bool::carrier() {
            assert_eq!(element_stability_index(&b, 4), Some(0));
        }
    }

    #[test]
    fn star_is_one() {
        assert_eq!(Bool(false).star(), Bool(true));
        assert_eq!(Bool(true).star(), Bool(true));
    }
}
