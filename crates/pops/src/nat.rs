//! The semiring of natural numbers `(ℕ, +, ×, 0, 1)` (Example 2.2).
//!
//! `ℕ` is naturally ordered (by the usual `≤`) but **not stable**: the
//! one-rule program `x :- 1 + 2x` (eq. 29 with `c = 2`) produces the
//! strictly increasing sequence `0, 1, 3, 7, 15, …` and diverges. `ℕ` is the
//! canonical witness that datalog° may diverge (Example 4.2 over ℕ).
//!
//! Representation: `u64` with saturating arithmetic. Divergence detection in
//! the engine happens via iteration caps long before saturation could be
//! reached on any paper workload; saturation merely keeps the arithmetic
//! total (documented substitution in DESIGN.md).

use crate::traits::*;

/// A natural number semiring element.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Nat(pub u64);

impl PreSemiring for Nat {
    fn zero() -> Self {
        Nat(0)
    }
    fn one() -> Self {
        Nat(1)
    }
    fn add(&self, rhs: &Self) -> Self {
        Nat(self.0.saturating_add(rhs.0))
    }
    fn mul(&self, rhs: &Self) -> Self {
        Nat(self.0.saturating_mul(rhs.0))
    }
}

impl Semiring for Nat {}
impl NaturallyOrdered for Nat {}

impl Pops for Nat {
    fn bottom() -> Self {
        Nat(0)
    }
    fn leq(&self, rhs: &Self) -> bool {
        self.0 <= rhs.0
    }
}

impl From<u64> for Nat {
    fn from(n: u64) -> Self {
        Nat(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(Nat(2).add(&Nat(3)), Nat(5));
        assert_eq!(Nat(2).mul(&Nat(3)), Nat(6));
        assert_eq!(Nat(0).mul(&Nat(9)), Nat(0));
    }

    #[test]
    fn natural_order() {
        assert!(Nat(0).leq(&Nat(5)));
        assert!(!Nat(5).leq(&Nat(4)));
        assert!(Nat::bottom().is_zero());
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        assert_eq!(Nat(u64::MAX).add(&Nat(1)), Nat(u64::MAX));
        assert_eq!(Nat(u64::MAX).mul(&Nat(2)), Nat(u64::MAX));
    }

    #[test]
    fn eq_29_iteration_strictly_increases() {
        // f(x) = 1 + 2x: the divergence witness for ℕ (Sec. 5 opening).
        let f = |x: Nat| Nat(1).add(&Nat(2).mul(&x));
        let mut x = Nat(0);
        let mut last = None;
        for _ in 0..20 {
            let nx = f(x);
            if let Some(prev) = last {
                assert!(x > prev, "sequence must strictly increase");
            }
            last = Some(x);
            x = nx;
        }
    }
}
