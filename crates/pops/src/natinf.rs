//! The ω-complete semiring `(ℕ ∪ {∞}, +, ×, 0, 1)` (Sec. 4.2 case (ii)).
//!
//! Every monotone function here *has* a least fixpoint (the structure is
//! ω-continuous), but the naïve algorithm need not reach it in finitely many
//! steps: `f(x) = x + 1` has `lfp = ∞`, approached but never attained.
//! `ℕ∞` therefore witnesses case (ii) of the convergence taxonomy: the lfp
//! always exists, yet datalog° may diverge.
//!
//! Conventions: `∞ + x = ∞`, `∞ × x = ∞` for `x ≠ 0`, and `∞ × 0 = 0`
//! (the standard ω-continuous convention, which preserves absorption).

use crate::traits::*;

/// A value in `ℕ ∪ {∞}`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum NatInf {
    /// A finite natural.
    Fin(u64),
    /// The limit `∞` (top of the natural order).
    Inf,
}

impl NatInf {
    /// Whether this is `∞`.
    pub fn is_inf(&self) -> bool {
        matches!(self, NatInf::Inf)
    }
}

impl PreSemiring for NatInf {
    fn zero() -> Self {
        NatInf::Fin(0)
    }
    fn one() -> Self {
        NatInf::Fin(1)
    }
    fn add(&self, rhs: &Self) -> Self {
        match (self, rhs) {
            (NatInf::Fin(a), NatInf::Fin(b)) => NatInf::Fin(a.saturating_add(*b)),
            _ => NatInf::Inf,
        }
    }
    fn mul(&self, rhs: &Self) -> Self {
        match (self, rhs) {
            (NatInf::Fin(a), NatInf::Fin(b)) => NatInf::Fin(a.saturating_mul(*b)),
            (NatInf::Fin(0), _) | (_, NatInf::Fin(0)) => NatInf::Fin(0),
            _ => NatInf::Inf,
        }
    }
}

impl Semiring for NatInf {}
impl NaturallyOrdered for NatInf {}

impl Pops for NatInf {
    fn bottom() -> Self {
        NatInf::Fin(0)
    }
    fn leq(&self, rhs: &Self) -> bool {
        match (self, rhs) {
            (NatInf::Fin(a), NatInf::Fin(b)) => a <= b,
            (_, NatInf::Inf) => true,
            (NatInf::Inf, NatInf::Fin(_)) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinity_conventions() {
        assert_eq!(NatInf::Inf.add(&NatInf::Fin(3)), NatInf::Inf);
        assert_eq!(NatInf::Inf.mul(&NatInf::Fin(3)), NatInf::Inf);
        assert_eq!(
            NatInf::Inf.mul(&NatInf::Fin(0)),
            NatInf::Fin(0),
            "∞ × 0 = 0"
        );
        assert_eq!(NatInf::zero().mul(&NatInf::Inf), NatInf::Fin(0));
    }

    #[test]
    fn case_ii_witness() {
        // f(x) = x + 1: lfp is ∞ (a fixpoint: ∞ + 1 = ∞) but naive
        // iteration from 0 never reaches it.
        let f = |x: NatInf| x.add(&NatInf::one());
        assert_eq!(f(NatInf::Inf), NatInf::Inf, "∞ is a fixpoint");
        let mut x = NatInf::bottom();
        for _ in 0..100 {
            let nx = f(x);
            assert_ne!(nx, x, "must keep strictly increasing");
            x = nx;
        }
    }

    #[test]
    fn order() {
        assert!(NatInf::Fin(3).leq(&NatInf::Inf));
        assert!(!NatInf::Inf.leq(&NatInf::Fin(1_000_000)));
        assert!(NatInf::Inf.leq(&NatInf::Inf));
    }
}
