//! # dlo-pops — partially ordered pre-semirings
//!
//! The algebraic substrate of the paper *Convergence of Datalog over
//! (Pre-) Semirings* (PODS 2022): the trait hierarchy of Sec. 2
//! (pre-semirings, semirings, POPS, dioids, complete distributive dioids,
//! star semirings) together with every concrete structure the paper uses:
//!
//! * [`boolean::Bool`] — plain datalog;
//! * [`nat::Nat`], [`real::Real`], [`natinf::NatInf`] — (un)stable bases;
//! * [`trop::Trop`] — shortest paths, 0-stable, the ACC counterexample;
//! * [`trop_p::TropP`] — top-(p+1) shortest paths, p-stable and tight;
//! * [`trop_eta::TropEta`] — paths within η, stable but not uniformly;
//! * [`lifted::Lifted`] / [`completed::Completed`] / [`powerset::PowerSet`]
//!   — the three POPS extension procedures of Sec. 2.5.1;
//! * [`three::Three`] and [`four::Four`] — Kleene/Belnap logics for
//!   datalog° with negation (Sec. 7);
//! * [`product::Product`] — non-trivial core semirings (Example 2.11);
//! * [`natpair_lex::NatPairLex`], [`maxplus::MaxPlus`], [`minnat::MinNat`],
//!   [`maxmin::MaxMin`] — divergence witnesses & additional dioids.
//!
//! The [`stability`] module implements Definition 5.1 (`u^(p)` sums,
//! stability indexes), and [`checker`] verifies every law of Sec. 2/6
//! exhaustively on the finite structures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boolean;
pub mod checker;
pub mod completed;
pub mod core_semiring;
pub mod f64total;
pub mod four;
pub mod lifted;
pub mod maxmin;
pub mod maxplus;
pub mod minnat;
pub mod nat;
pub mod natinf;
pub mod natpair_lex;
pub mod nnreal;
pub mod powerset;
pub mod product;
pub mod real;
pub mod stability;
pub mod three;
pub mod traits;
pub mod trop;
pub mod trop_eta;
pub mod trop_p;

pub use boolean::Bool;
pub use completed::Completed;
pub use core_semiring::{core_carrier, proposition_2_4};
pub use f64total::F64;
pub use four::Four;
pub use lifted::{Lifted, LiftedBool, LiftedNat, LiftedReal};
pub use maxmin::MaxMin;
pub use maxplus::MaxPlus;
pub use minnat::MinNat;
pub use nat::Nat;
pub use natinf::NatInf;
pub use natpair_lex::NatPairLex;
pub use nnreal::NNReal;
pub use powerset::PowerSet;
pub use product::Product;
pub use real::Real;
pub use three::Three;
pub use traits::{
    Absorptive, CompleteDistributiveDioid, Dioid, FiniteCarrier, NaturallyOrdered, Pops,
    PreSemiring, Semiring, StarSemiring, TotallyOrderedDioid, UniformlyStable,
};
pub use trop::Trop;
pub use trop_eta::TropEta;
pub use trop_p::TropP;
