//! The power-set POPS `P(S)` (Sec. 2.5.1): incomplete information.
//!
//! Elements are finite sets of `S`-values ordered by inclusion; operations
//! act elementwise on sets: `A ⊕ B = {a ⊕ b | a ∈ A, b ∈ B}` and likewise
//! for `⊗`. `⊥ = ∅` is "undefined", singletons are exact values, larger
//! sets represent degrees of incompleteness (`⊤ = S` when `S` is finite is
//! full contradiction).
//!
//! Note (paper subtlety): with `⊥ = ∅`, both operations are absorbed by
//! `∅`, so `P(S) ⊕ ⊥ = {∅}` under the Prop. 2.4 reading, while the
//! identity the paper prints (`P(S) ⊕ {0} = P(S)`) uses the additive unit
//! `{0}` instead of the order-minimum. We implement `⊥ = ∅` (the order
//! minimum) and exercise both readings in tests.

use crate::traits::*;
use std::collections::BTreeSet;

/// A set of candidate values from `S`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PowerSet<S: Ord> {
    set: BTreeSet<S>,
}

impl<S: PreSemiring + Ord> PowerSet<S> {
    /// The empty set (`⊥`, undefined).
    pub fn empty() -> Self {
        PowerSet {
            set: BTreeSet::new(),
        }
    }

    /// A singleton (an exact value).
    pub fn singleton(x: S) -> Self {
        PowerSet {
            set: std::iter::once(x).collect(),
        }
    }

    /// From an iterator of values.
    #[allow(clippy::should_implement_trait)] // inherent constructor, not FromIterator
    pub fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        PowerSet {
            set: iter.into_iter().collect(),
        }
    }

    /// The member values.
    pub fn members(&self) -> impl Iterator<Item = &S> {
        self.set.iter()
    }

    /// Number of candidate values.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the set is empty (undefined).
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    fn lift2(&self, rhs: &Self, f: impl Fn(&S, &S) -> S) -> Self {
        let mut out = BTreeSet::new();
        for a in &self.set {
            for b in &rhs.set {
                out.insert(f(a, b));
            }
        }
        PowerSet { set: out }
    }
}

impl<S: PreSemiring + Ord> PreSemiring for PowerSet<S> {
    fn zero() -> Self {
        Self::singleton(S::zero())
    }
    fn one() -> Self {
        Self::singleton(S::one())
    }
    fn add(&self, rhs: &Self) -> Self {
        self.lift2(rhs, |a, b| a.add(b))
    }
    fn mul(&self, rhs: &Self) -> Self {
        self.lift2(rhs, |a, b| a.mul(b))
    }
}

impl<S: PreSemiring + Ord> Pops for PowerSet<S> {
    fn bottom() -> Self {
        Self::empty()
    }
    fn leq(&self, rhs: &Self) -> bool {
        self.set.is_subset(&rhs.set)
    }
}

impl<S: PreSemiring + FiniteCarrier + Ord> FiniteCarrier for PowerSet<S> {
    fn carrier() -> Vec<Self> {
        let base = S::carrier();
        assert!(base.len() <= 8, "carrier too large to enumerate subsets");
        let mut out = vec![];
        for mask in 0u32..(1 << base.len()) {
            out.push(Self::from_iter(
                base.iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, x)| x.clone()),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boolean::Bool;
    use crate::nat::Nat;

    type PN = PowerSet<Nat>;

    #[test]
    fn elementwise_ops() {
        let a = PN::from_iter([Nat(1), Nat(2)]);
        let b = PN::from_iter([Nat(10), Nat(20)]);
        assert_eq!(
            a.add(&b),
            PN::from_iter([Nat(11), Nat(21), Nat(12), Nat(22)])
        );
        assert_eq!(a.mul(&b), PN::from_iter([Nat(10), Nat(20), Nat(40)]));
    }

    #[test]
    fn empty_absorbs() {
        let a = PN::from_iter([Nat(1), Nat(2)]);
        assert_eq!(a.add(&PN::empty()), PN::empty());
        assert_eq!(a.mul(&PN::empty()), PN::empty());
    }

    #[test]
    fn inclusion_order() {
        let a = PN::from_iter([Nat(1)]);
        let ab = PN::from_iter([Nat(1), Nat(2)]);
        assert!(a.leq(&ab));
        assert!(!ab.leq(&a));
        assert!(PN::bottom().leq(&a));
    }

    #[test]
    fn identity_units() {
        let a = PN::from_iter([Nat(3), Nat(5)]);
        assert_eq!(a.add(&PN::zero()), a);
        assert_eq!(a.mul(&PN::one()), a);
    }

    #[test]
    fn paper_identity_adding_unit_preserves_everything() {
        // P(S) ⊕ {0} = P(S): x ⊕ {0} = x for every x (the paper's reading).
        for x in PowerSet::<Bool>::carrier() {
            assert_eq!(x.add(&PowerSet::<Bool>::zero()), x);
        }
        // Prop. 2.4 reading with ⊥ = ∅: the core collapses to {∅}.
        for x in PowerSet::<Bool>::carrier() {
            assert_eq!(x.add(&PowerSet::<Bool>::bottom()), PowerSet::empty());
        }
    }
}
