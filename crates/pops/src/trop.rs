//! The tropical semiring `Trop⁺ = (ℝ₊ ∪ {∞}, min, +, ∞, 0)` (Example 2.2).
//!
//! The POPS order `x ⊑ y` is the *reverse* numeric order `x ≥ y` (shortest
//! paths improve downward). `Trop⁺` is:
//!
//! * a **0-stable** semiring (`min(0, x) = 0`), so every datalog° program
//!   over it converges in at most `N` steps (Corollary 5.19) — even though
//!   `Trop⁺` does **not** satisfy the ascending chain condition
//!   (`1 > 1/2 > 1/3 > …` ascends forever in `⊑`);
//! * a complete distributive dioid, with difference (eq. 6)
//!   `v ⊖ u = v` if `v < u`, else `∞` — the key to tropical semi-naïve
//!   evaluation (eq. 7).

use crate::f64total::F64;
use crate::traits::*;

/// A tropical semiring element: a cost in `ℝ₊ ∪ {∞}`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Trop(pub F64);

impl Trop {
    /// The infinite cost `∞` (tropical `0` = `⊥`).
    pub const INF: Trop = Trop(F64::INFINITY);

    /// A finite non-negative cost.
    pub fn finite(x: f64) -> Trop {
        assert!(
            x >= 0.0 && x.is_finite(),
            "Trop requires non-negative finite costs, got {x}"
        );
        Trop(F64::of(x))
    }

    /// The underlying cost.
    pub fn get(&self) -> f64 {
        self.0.get()
    }

    /// Whether the cost is finite (i.e. the tuple is "present").
    pub fn is_finite(&self) -> bool {
        self.0.is_finite()
    }
}

impl PreSemiring for Trop {
    fn zero() -> Self {
        Trop::INF
    }
    fn one() -> Self {
        Trop(F64::ZERO)
    }
    fn add(&self, rhs: &Self) -> Self {
        Trop(self.0.min(rhs.0))
    }
    fn mul(&self, rhs: &Self) -> Self {
        Trop(self.0.add(rhs.0))
    }
}

impl Semiring for Trop {}
impl Dioid for Trop {}
impl NaturallyOrdered for Trop {}
// `min(0, x) = 0` on non-negative costs: every element is 0-stable, so
// worklist/priority evaluation applies (Cor. 5.19).
impl Absorptive for Trop {}

impl TotallyOrderedDioid for Trop {
    fn chain_cmp(&self, other: &Self) -> std::cmp::Ordering {
        // ⊑ is the reverse numeric order: smaller cost = further up.
        other.0.cmp(&self.0)
    }
}

impl Pops for Trop {
    fn bottom() -> Self {
        Trop::INF
    }
    fn leq(&self, rhs: &Self) -> bool {
        // ⊑ is the reverse numeric order.
        self.0 >= rhs.0
    }
}

impl CompleteDistributiveDioid for Trop {
    fn minus(&self, rhs: &Self) -> Self {
        // eq. (6): v ⊖ u = v if v < u (numerically), else ∞.
        if self.0 < rhs.0 {
            *self
        } else {
            Trop::INF
        }
    }
}

impl StarSemiring for Trop {
    fn star(&self) -> Self {
        // min(0, a, 2a, …) = 0 for a ≥ 0.
        Trop::one()
    }
}

impl UniformlyStable for Trop {
    fn uniform_stability_index() -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stability::is_p_stable;

    #[test]
    fn min_plus_ops() {
        assert_eq!(Trop::finite(3.0).add(&Trop::finite(5.0)), Trop::finite(3.0));
        assert_eq!(Trop::finite(3.0).mul(&Trop::finite(5.0)), Trop::finite(8.0));
        assert_eq!(Trop::INF.add(&Trop::finite(5.0)), Trop::finite(5.0));
        assert_eq!(Trop::INF.mul(&Trop::finite(5.0)), Trop::INF);
    }

    #[test]
    fn identities() {
        assert_eq!(Trop::zero(), Trop::INF);
        assert_eq!(Trop::one(), Trop::finite(0.0));
        assert!(Trop::zero().is_zero());
    }

    #[test]
    fn order_is_reversed() {
        assert!(Trop::INF.leq(&Trop::finite(7.0)));
        assert!(Trop::finite(7.0).leq(&Trop::finite(3.0)));
        assert!(!Trop::finite(3.0).leq(&Trop::finite(7.0)));
        assert!(Trop::bottom().is_bottom());
    }

    #[test]
    fn minus_eq_6() {
        // new value strictly better -> keep it; otherwise ∞ ("no change").
        assert_eq!(
            Trop::finite(3.0).minus(&Trop::finite(5.0)),
            Trop::finite(3.0)
        );
        assert_eq!(Trop::finite(5.0).minus(&Trop::finite(3.0)), Trop::INF);
        assert_eq!(Trop::finite(5.0).minus(&Trop::finite(5.0)), Trop::INF);
        assert_eq!(Trop::finite(5.0).minus(&Trop::INF), Trop::finite(5.0));
    }

    #[test]
    fn frontier_marker_laws_hold_on_samples() {
        // Law gate for the `Absorptive` / `TotallyOrderedDioid` markers
        // (the engine's worklist fast path trusts them): checked on a
        // sample spanning 0, small/large finite costs, and ∞.
        let sample: Vec<Trop> = [0.0, 0.25, 1.0, 3.5, 1e9]
            .iter()
            .map(|&c| Trop::finite(c))
            .chain([Trop::INF])
            .collect();
        let v = crate::checker::absorptive_laws_on(&sample);
        assert!(v.is_empty(), "{v:?}");
        let v = crate::checker::chain_order_laws_on(&sample);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn zero_stable_without_acc() {
        // 0-stable...
        assert!(is_p_stable(&Trop::finite(0.25), 0));
        // ...while 1 > 1/2 > 1/3 > ... is an infinite ascending ⊑-chain,
        // so ACC fails: stability does not require ACC (Sec. 5.1).
        let chain: Vec<Trop> = (1..100).map(|k| Trop::finite(1.0 / k as f64)).collect();
        for w in chain.windows(2) {
            assert!(w[0].strictly_below(&w[1]));
        }
    }
}
