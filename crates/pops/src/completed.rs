//! The completed POPS `S_⊥^⊤` (Sec. 2.5.1): undefined *and* contradiction.
//!
//! Extends a pre-semiring with `⊥` (undefined — absorbing for both
//! operations, even against `⊤`) and `⊤` (contradiction — absorbing
//! against everything except `⊥`). Intuition: `⊥` is the empty set of
//! candidate values, each `x ∈ S` a singleton, `⊤` the whole of `S`.
//! Order: `⊥ ⊑ x ⊑ ⊤`, values pairwise incomparable. Like the lifted POPS,
//! the core semiring is trivial.

use crate::traits::*;

/// An element of the completed POPS `S_⊥^⊤`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Completed<S> {
    /// Undefined (no information).
    CBot,
    /// A defined value.
    CVal(S),
    /// Contradiction (conflicting information).
    CTop,
}

pub use Completed::{CBot, CTop, CVal};

impl<S: PreSemiring> PreSemiring for Completed<S> {
    fn zero() -> Self {
        CVal(S::zero())
    }
    fn one() -> Self {
        CVal(S::one())
    }
    fn add(&self, rhs: &Self) -> Self {
        match (self, rhs) {
            (CBot, _) | (_, CBot) => CBot,
            (CTop, _) | (_, CTop) => CTop,
            (CVal(a), CVal(b)) => CVal(a.add(b)),
        }
    }
    fn mul(&self, rhs: &Self) -> Self {
        match (self, rhs) {
            (CBot, _) | (_, CBot) => CBot,
            (CTop, _) | (_, CTop) => CTop,
            (CVal(a), CVal(b)) => CVal(a.mul(b)),
        }
    }
}

impl<S: PreSemiring> Pops for Completed<S> {
    fn bottom() -> Self {
        CBot
    }
    fn leq(&self, rhs: &Self) -> bool {
        match (self, rhs) {
            (CBot, _) => true,
            (_, CTop) => true,
            (CVal(a), CVal(b)) => a == b,
            _ => false,
        }
    }
}

impl<S: FiniteCarrier> FiniteCarrier for Completed<S> {
    fn carrier() -> Vec<Self> {
        std::iter::once(CBot)
            .chain(S::carrier().into_iter().map(CVal))
            .chain(std::iter::once(CTop))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nat::Nat;

    type C = Completed<Nat>;

    #[test]
    fn bot_beats_top() {
        assert_eq!(CTop::<Nat>.add(&CBot), C::bottom());
        assert_eq!(CTop::<Nat>.mul(&CBot), CBot);
    }

    #[test]
    fn top_absorbs_values() {
        assert_eq!(CVal(Nat(3)).add(&CTop), CTop);
        assert_eq!(CVal(Nat(3)).mul(&CTop), CTop);
    }

    #[test]
    fn values_compute_in_s() {
        assert_eq!(CVal(Nat(3)).add(&CVal(Nat(4))), CVal(Nat(7)));
        assert_eq!(CVal(Nat(3)).mul(&CVal(Nat(4))), CVal(Nat(12)));
    }

    #[test]
    fn diamond_order() {
        assert!(CBot.leq(&CVal(Nat(1))));
        assert!(CVal(Nat(1)).leq(&CTop));
        assert!(CBot::<Nat>.leq(&CTop));
        assert!(!CVal(Nat(1)).leq(&CVal(Nat(2))));
        assert!(!CTop.leq(&CVal(Nat(1))));
    }

    #[test]
    fn monotone_ops() {
        // ⊥ ⊑ x and f(⊥) = ⊥ ⊑ f(x): spot-check the lattice diamond.
        let chain = [CBot, CVal(Nat(2)), CTop];
        for w in chain.windows(2) {
            assert!(w[0].leq(&w[1]));
            assert!(w[0].add(&CVal(Nat(5))).leq(&w[1].add(&CVal(Nat(5)))));
            assert!(w[0].mul(&CVal(Nat(5))).leq(&w[1].mul(&CVal(Nat(5)))));
        }
    }
}
