//! Lifting a pre-semiring with an *undefined* value `⊥` (Sec. 2.5.1).
//!
//! `S_⊥` extends `S` with a new least element `⊥` that is absorbing for both
//! operations: `x ⊕ ⊥ = x ⊗ ⊥ = ⊥`. The order is flat: `⊥ ⊑ x` and
//! `x ⊑ y ⟺ x = y` otherwise. A lifted POPS is **never** a semiring
//! (`0 ⊗ ⊥ = ⊥ ≠ 0`), and its core semiring `S_⊥ ⊕ ⊥ = {⊥}` is trivial —
//! which is exactly why *every* datalog° program over `ℝ_⊥` converges
//! (Corollary 5.19 with the 0-stable trivial core): the bill-of-material
//! program of Example 4.2.

use crate::traits::*;

/// An element of the lifted POPS `S_⊥`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Lifted<S> {
    /// The undefined value `⊥` (sorts below all values).
    Bot,
    /// A defined value from `S`.
    Val(S),
}

pub use Lifted::{Bot, Val};

impl<S> Lifted<S> {
    /// Whether the value is defined.
    pub fn is_defined(&self) -> bool {
        matches!(self, Val(_))
    }

    /// The defined value, if any.
    pub fn value(&self) -> Option<&S> {
        match self {
            Bot => None,
            Val(v) => Some(v),
        }
    }
}

impl<S: PreSemiring> PreSemiring for Lifted<S> {
    fn zero() -> Self {
        Val(S::zero())
    }
    fn one() -> Self {
        Val(S::one())
    }
    fn add(&self, rhs: &Self) -> Self {
        match (self, rhs) {
            (Val(a), Val(b)) => Val(a.add(b)),
            _ => Bot,
        }
    }
    fn mul(&self, rhs: &Self) -> Self {
        match (self, rhs) {
            (Val(a), Val(b)) => Val(a.mul(b)),
            _ => Bot,
        }
    }
}

// NOTE: deliberately *no* `Semiring` impl — `0 ⊗ ⊥ = ⊥ ≠ 0`.

impl<S: PreSemiring> Pops for Lifted<S> {
    fn bottom() -> Self {
        Bot
    }
    fn leq(&self, rhs: &Self) -> bool {
        match (self, rhs) {
            (Bot, _) => true,
            (Val(a), Val(b)) => a == b,
            (Val(_), Bot) => false,
        }
    }
}

impl<S: FiniteCarrier> FiniteCarrier for Lifted<S> {
    fn carrier() -> Vec<Self> {
        std::iter::once(Bot)
            .chain(S::carrier().into_iter().map(Val))
            .collect()
    }
}

/// The lifted reals `ℝ_⊥` (Example 4.2, bill of material).
pub type LiftedReal = Lifted<crate::real::Real>;
/// The lifted naturals `ℕ_⊥`.
pub type LiftedNat = Lifted<crate::nat::Nat>;
/// The lifted Booleans `𝔹_⊥` — *not* the same as `THREE`: here `0 ∧ ⊥ = ⊥`,
/// in `THREE` `0 ∧ ⊥ = 0` (Sec. 2.5.2).
pub type LiftedBool = Lifted<crate::boolean::Bool>;

/// Convenience constructor for lifted reals.
pub fn lreal(x: f64) -> LiftedReal {
    Val(crate::real::Real::of(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boolean::Bool;
    use crate::real::Real;

    #[test]
    fn bottom_absorbs_both_ops() {
        let x = lreal(4.0);
        assert_eq!(x.add(&Bot), Bot);
        assert_eq!(x.mul(&Bot), Bot);
        assert_eq!(LiftedReal::zero().mul(&Bot), Bot); // not a semiring
    }

    #[test]
    fn defined_values_behave_like_s() {
        assert_eq!(lreal(2.0).add(&lreal(3.0)), lreal(5.0));
        assert_eq!(lreal(2.0).mul(&lreal(3.0)), lreal(6.0));
    }

    #[test]
    fn flat_order() {
        assert!(Bot.leq(&lreal(1.0)));
        assert!(lreal(1.0).leq(&lreal(1.0)));
        assert!(!lreal(1.0).leq(&lreal(2.0)));
        assert!(!lreal(1.0).leq(&Bot));
        assert_eq!(LiftedReal::bottom(), Bot);
    }

    #[test]
    fn lifted_bool_differs_from_three() {
        use crate::three::Three;
        // In B⊥: 0 ∧ ⊥ = ⊥. In THREE: 0 ∧ ⊥ = 0.
        let zero_and_bot = LiftedBool::Val(Bool(false)).mul(&LiftedBool::Bot);
        assert_eq!(zero_and_bot, LiftedBool::Bot);
        assert_eq!(Three::False.mul(&Three::Undef), Three::False);
    }

    #[test]
    fn sec_2_2_subtlety_zero_coefficient_does_not_vanish() {
        // Over R⊥, f(x) = 0·x + b is NOT the constant b: f(⊥) = ⊥ ≠ b.
        let b = lreal(7.0);
        let f = |x: &LiftedReal| LiftedReal::zero().mul(x).add(&b);
        assert_eq!(f(&Bot), Bot);
        assert_eq!(f(&lreal(5.0)), b);
    }

    #[test]
    fn core_semiring_is_trivial() {
        // P ⊕ ⊥ = {⊥}: adding ⊥ to anything gives ⊥.
        for x in [Bot, lreal(0.0), lreal(9.0)] {
            assert_eq!(x.add(&Bot), Bot);
        }
        let _ = Real::of(1.0); // silence unused import in some cfgs
    }
}
