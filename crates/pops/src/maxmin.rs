//! The max-min (fuzzy / bottleneck) dioid `([0,1], max, min, 0, 1)`.
//!
//! A bounded distributive lattice, hence a 0-stable semiring (the paper,
//! Sec. 5.1: every distributive lattice with `+ = ∨`, `· = ∧` is 0-stable).
//! Datalog° over it computes widest-path / maximum-capacity-path style
//! queries; it also serves as an extra complete distributive dioid for the
//! semi-naïve machinery.

use crate::f64total::F64;
use crate::traits::*;

/// A confidence / capacity value in `[0, 1]`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MaxMin(pub F64);

impl MaxMin {
    /// Constructs from a value in `[0, 1]`.
    pub fn of(x: f64) -> MaxMin {
        assert!((0.0..=1.0).contains(&x), "MaxMin requires [0,1], got {x}");
        MaxMin(F64::of(x))
    }
    /// The underlying value.
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

impl PreSemiring for MaxMin {
    fn zero() -> Self {
        MaxMin(F64::ZERO)
    }
    fn one() -> Self {
        MaxMin(F64::ONE)
    }
    fn add(&self, rhs: &Self) -> Self {
        MaxMin(self.0.max(rhs.0))
    }
    fn mul(&self, rhs: &Self) -> Self {
        MaxMin(self.0.min(rhs.0))
    }
}

impl Semiring for MaxMin {}
impl Dioid for MaxMin {}
impl NaturallyOrdered for MaxMin {}
// `max(x, 1) = 1` on `[0,1]`: bounded lattices are 0-stable.
impl Absorptive for MaxMin {}

impl TotallyOrderedDioid for MaxMin {
    fn chain_cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl Pops for MaxMin {
    fn bottom() -> Self {
        MaxMin(F64::ZERO)
    }
    fn leq(&self, rhs: &Self) -> bool {
        self.0 <= rhs.0
    }
}

impl CompleteDistributiveDioid for MaxMin {
    fn minus(&self, rhs: &Self) -> Self {
        // b ⊖ a = ⋀{c | max(a,c) ≥ b} = 0 if a ≥ b else b.
        if rhs.0 >= self.0 {
            MaxMin(F64::ZERO)
        } else {
            *self
        }
    }
}

impl StarSemiring for MaxMin {
    fn star(&self) -> Self {
        MaxMin::one() // max(1, a, a², …) = 1
    }
}

impl UniformlyStable for MaxMin {
    fn uniform_stability_index() -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_ops() {
        assert_eq!(MaxMin::of(0.3).add(&MaxMin::of(0.7)), MaxMin::of(0.7));
        assert_eq!(MaxMin::of(0.3).mul(&MaxMin::of(0.7)), MaxMin::of(0.3));
    }

    #[test]
    fn minus_definition() {
        assert_eq!(MaxMin::of(0.7).minus(&MaxMin::of(0.3)), MaxMin::of(0.7));
        assert_eq!(MaxMin::of(0.3).minus(&MaxMin::of(0.7)), MaxMin::zero());
        assert_eq!(MaxMin::of(0.3).minus(&MaxMin::of(0.3)), MaxMin::zero());
    }

    #[test]
    fn frontier_marker_laws_hold_on_samples() {
        let sample: Vec<MaxMin> = [0.0, 0.125, 0.5, 0.875, 1.0]
            .iter()
            .map(|&c| MaxMin::of(c))
            .collect();
        let v = crate::checker::absorptive_laws_on(&sample);
        assert!(v.is_empty(), "{v:?}");
        let v = crate::checker::chain_order_laws_on(&sample);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn zero_stable_distributive_lattice() {
        use crate::stability::element_stability_index;
        assert_eq!(element_stability_index(&MaxMin::of(0.42), 3), Some(0));
    }
}
