//! The p-stable tropical semiring `Trop⁺_p` (Example 2.9).
//!
//! Elements are *bags* of `p+1` costs in `ℝ₊ ∪ {∞}` kept sorted ascending;
//! `x ⊕ y = min_p(x ⊎ y)` (the `p+1` smallest of the bag union) and
//! `x ⊗ y = min_p(x + y)` (the `p+1` smallest pairwise sums). A datalog°
//! program over `Trop⁺_p` computes, e.g., the top `p+1` shortest path
//! lengths (Example 4.1).
//!
//! `Trop⁺_p` is **p-stable and the bound is tight** (Proposition 5.3): the
//! multiplicative unit `1_p = {{0, ∞, …, ∞}}` is not `(p-1)`-stable.

use crate::f64total::F64;
use crate::traits::*;

/// A `Trop⁺_p` element: a sorted bag of exactly `P+1` costs.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TropP<const P: usize> {
    /// Sorted ascending; length is always `P+1`.
    costs: Vec<F64>,
}

impl<const P: usize> TropP<P> {
    /// Builds an element from up to `P+1` costs; missing slots are filled
    /// with `∞`, excess entries beyond the `P+1` smallest are dropped
    /// (i.e. the input is passed through `min_p`).
    pub fn from_costs(costs: &[f64]) -> Self {
        let mut v: Vec<F64> = costs
            .iter()
            .map(|&c| {
                assert!(c >= 0.0, "TropP costs must be non-negative, got {c}");
                F64::of(c)
            })
            .collect();
        v.sort_unstable();
        v.truncate(P + 1);
        while v.len() < P + 1 {
            v.push(F64::INFINITY);
        }
        TropP { costs: v }
    }

    /// The sorted bag of costs (length `P+1`).
    pub fn costs(&self) -> &[F64] {
        &self.costs
    }

    /// The best (smallest) cost in the bag.
    pub fn best(&self) -> F64 {
        self.costs[0]
    }

    /// `min_p` of an arbitrary collection: sort ascending, keep `P+1`.
    fn min_p(mut v: Vec<F64>) -> Self {
        v.sort_unstable();
        v.truncate(P + 1);
        debug_assert_eq!(v.len(), P + 1);
        TropP { costs: v }
    }
}

impl<const P: usize> PreSemiring for TropP<P> {
    fn zero() -> Self {
        TropP {
            costs: vec![F64::INFINITY; P + 1],
        }
    }
    fn one() -> Self {
        let mut costs = vec![F64::INFINITY; P + 1];
        costs[0] = F64::ZERO;
        TropP { costs }
    }
    fn add(&self, rhs: &Self) -> Self {
        // min_p of the bag union: merge two sorted runs.
        let mut merged = Vec::with_capacity(2 * (P + 1));
        let (mut i, mut j) = (0, 0);
        while merged.len() < P + 1 {
            if self.costs[i] <= rhs.costs[j] {
                merged.push(self.costs[i]);
                i += 1;
            } else {
                merged.push(rhs.costs[j]);
                j += 1;
            }
        }
        TropP { costs: merged }
    }
    fn mul(&self, rhs: &Self) -> Self {
        // min_p of all pairwise sums.
        let mut sums = Vec::with_capacity((P + 1) * (P + 1));
        for &a in &self.costs {
            for &b in &rhs.costs {
                sums.push(a.add(b));
            }
        }
        Self::min_p(sums)
    }
}

impl<const P: usize> Semiring for TropP<P> {}
impl<const P: usize> NaturallyOrdered for TropP<P> {}

impl<const P: usize> Pops for TropP<P> {
    fn bottom() -> Self {
        Self::zero()
    }

    /// The natural order: `x ⊑ y ⟺ ∃z. x ⊕ z = y`.
    ///
    /// Decided greedily: walk `y` ascending while consuming matching
    /// elements of `x`; any unconsumed element of `x` strictly smaller than
    /// the current `y`-element would force itself into `min_p(x ⊎ z)`, so
    /// the order fails. (Verified against brute force in tests.)
    fn leq(&self, rhs: &Self) -> bool {
        let mut i = 0; // pointer into self (x)
        for &y in &rhs.costs {
            if i < self.costs.len() && self.costs[i] < y {
                // An unconsumed x-element strictly below the next y-element
                // would force itself into min_p(x ⊎ z).
                return false;
            }
            if i < self.costs.len() && self.costs[i] == y {
                i += 1;
            }
            // else: y is supplied by z.
        }
        // Remaining x-elements are all ≥ max(y): with ties they can only be
        // displaced by equal elements, which leaves the output bag intact
        // only if they equal max(y)... Careful tie case: unconsumed
        // x-elements equal to max(y) would still be candidates, but min_p
        // breaks ties arbitrarily among equal values, so the output multiset
        // is unchanged. Strictly larger leftovers never enter the output.
        true
    }
}

impl<const P: usize> StarSemiring for TropP<P> {
    fn star(&self) -> Self {
        crate::stability::stable_star(self, P)
    }
}

impl<const P: usize> UniformlyStable for TropP<P> {
    fn uniform_stability_index() -> usize {
        P
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stability::{element_stability_index, is_p_stable, powers_sum};

    type T2 = TropP<2>;

    #[test]
    fn example_2_9_ops() {
        // {{3,7,9}} ⊕₂ {{3,7,7}} = {{3,3,7}}
        let x = T2::from_costs(&[3.0, 7.0, 9.0]);
        let y = T2::from_costs(&[3.0, 7.0, 7.0]);
        assert_eq!(x.add(&y), T2::from_costs(&[3.0, 3.0, 7.0]));
        // {{3,7,9}} ⊗₂ {{3,7,7}} = {{6,10,10}}
        assert_eq!(x.mul(&y), T2::from_costs(&[6.0, 10.0, 10.0]));
    }

    #[test]
    fn identities() {
        let x = T2::from_costs(&[3.0, 7.0, 9.0]);
        assert_eq!(x.add(&T2::zero()), x);
        assert_eq!(x.mul(&T2::one()), x);
    }

    #[test]
    fn eq_15_homomorphism() {
        // min_p(min_p(x ⊎ y) ⊎ z) = min_p(x ⊎ y ⊎ z) — associativity probe.
        let x = T2::from_costs(&[1.0, 4.0, 4.0]);
        let y = T2::from_costs(&[2.0, 2.0, 9.0]);
        let z = T2::from_costs(&[0.5, 3.0, 8.0]);
        assert_eq!(x.add(&y).add(&z), x.add(&y.add(&z)));
        assert_eq!(x.mul(&y).mul(&z), x.mul(&y.mul(&z)));
        assert_eq!(x.mul(&y.add(&z)), x.mul(&y).add(&x.mul(&z)));
    }

    #[test]
    fn proposition_5_3_p_stable_and_tight() {
        // Every element is p-stable...
        for costs in [&[0.0, 1.0, 2.0][..], &[5.0][..], &[][..]] {
            let u = T2::from_costs(costs);
            assert!(is_p_stable(&u, 2), "{u:?} must be 2-stable");
        }
        // ...and 1_p is not (p-1)-stable: 1^(p-1) has p zeros and one ∞,
        // 1^(p) has p+1 zeros.
        let one = T2::one();
        assert_eq!(powers_sum(&one, 1), T2::from_costs(&[0.0, 0.0]));
        assert_eq!(powers_sum(&one, 2), T2::from_costs(&[0.0, 0.0, 0.0]));
        assert_eq!(element_stability_index(&one, 10), Some(2));
    }

    #[test]
    fn p_equals_zero_degenerates_to_trop() {
        let x = TropP::<0>::from_costs(&[3.0]);
        let y = TropP::<0>::from_costs(&[5.0]);
        assert_eq!(x.add(&y), TropP::<0>::from_costs(&[3.0]));
        assert_eq!(x.mul(&y), TropP::<0>::from_costs(&[8.0]));
        assert_eq!(element_stability_index(&x, 5), Some(0));
    }

    /// Brute-force check of the natural order on a small discrete grid:
    /// x ⪯ y iff some bag z over the grid has x ⊕ z = y.
    #[test]
    fn natural_order_matches_brute_force() {
        type T1 = TropP<1>;
        let grid = [0.0, 1.0, 2.0, f64::INFINITY];
        let elements: Vec<T1> = {
            let mut v = vec![];
            for &a in &grid {
                for &b in &grid {
                    let e = T1::from_costs(
                        &[a, b]
                            .iter()
                            .copied()
                            .filter(|c| c.is_finite())
                            .collect::<Vec<_>>(),
                    );
                    if !v.contains(&e) {
                        v.push(e);
                    }
                }
            }
            v
        };
        for x in &elements {
            for y in &elements {
                let brute = elements.iter().any(|z| &x.add(z) == y);
                assert_eq!(
                    x.leq(y),
                    brute,
                    "leq mismatch for x={x:?} y={y:?} (brute={brute})"
                );
            }
        }
    }

    #[test]
    fn order_has_bottom() {
        let x = T2::from_costs(&[3.0, 7.0]);
        assert!(T2::bottom().leq(&x));
        assert!(x.leq(&x));
    }
}
