//! Stability of semiring elements (Definition 5.1).
//!
//! For `u` in a semiring, `u^(p) = 1 ⊕ u ⊕ u² ⊕ … ⊕ u^p`. The element is
//! *p-stable* when `u^(p) = u^(p+1)`; the least such `p` is its *stability
//! index*. A semiring is *stable* if every element is stable, and
//! *uniformly stable* (p-stable) if one `p` works for all elements.
//! Convergence of datalog° on a POPS `P` is governed by stability of the
//! core semiring `P ⊕ ⊥` (Theorem 1.2).

use crate::traits::{PreSemiring, Semiring};

/// Computes `u^(p) = 1 ⊕ u ⊕ u² ⊕ … ⊕ u^p` (eq. 30).
pub fn powers_sum<S: PreSemiring>(u: &S, p: usize) -> S {
    let mut acc = S::one(); // u^(0) = 1
    let mut upow = S::one();
    for _ in 0..p {
        upow = upow.mul(u);
        acc = acc.add(&upow);
    }
    acc
}

/// Returns the stability index of `u` — the least `p` with
/// `u^(p) = u^(p+1)` — or `None` if no index `≤ cap` works.
///
/// By eq. (31), once `u^(p) = u^(p+1)` holds, `u^(p) = u^(q)` for all
/// `q > p`, so the first fixed step is the index.
pub fn element_stability_index<S: Semiring>(u: &S, cap: usize) -> Option<usize> {
    let mut acc = S::one();
    let mut upow = S::one();
    for p in 0..=cap {
        upow = upow.mul(u);
        let next = acc.add(&upow);
        if next == acc {
            return Some(p);
        }
        acc = next;
    }
    None
}

/// Whether `u` is `p`-stable: `u^(p) = u^(p+1)`.
pub fn is_p_stable<S: Semiring>(u: &S, p: usize) -> bool {
    powers_sum(u, p) == powers_sum(u, p + 1)
}

/// The Kleene star of a `p`-stable element: `u* = u^(p)`.
///
/// This is the closure used by the Floyd–Warshall–Kleene algorithm and by
/// `LinearLFP` (Sec. 5.5) on uniformly stable semirings.
pub fn stable_star<S: Semiring>(u: &S, p: usize) -> S {
    powers_sum(u, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boolean::Bool;
    use crate::nat::Nat;
    use crate::trop::Trop;

    #[test]
    fn powers_sum_over_nat() {
        // 1 + 2 + 4 + 8 = 15
        assert_eq!(powers_sum(&Nat(2), 3), Nat(15));
        // u^(0) = 1
        assert_eq!(powers_sum(&Nat(7), 0), Nat(1));
    }

    #[test]
    fn nat_is_not_stable() {
        assert_eq!(element_stability_index(&Nat(2), 30), None);
        // ... except 0, which is 0-stable: 1 + 0 = 1.
        assert_eq!(element_stability_index(&Nat(0), 30), Some(0));
    }

    #[test]
    fn trop_is_zero_stable() {
        for v in [0.0, 0.5, 3.0] {
            assert_eq!(element_stability_index(&Trop::finite(v), 5), Some(0));
        }
        assert_eq!(element_stability_index(&Trop::INF, 5), Some(0));
    }

    #[test]
    fn booleans_zero_stable() {
        assert!(is_p_stable(&Bool(true), 0));
        assert!(is_p_stable(&Bool(false), 0));
    }

    #[test]
    fn stability_monotone_in_p() {
        // p-stable implies q-stable for q >= p (eq. 31).
        assert!(is_p_stable(&Trop::finite(2.0), 0));
        assert!(is_p_stable(&Trop::finite(2.0), 1));
        assert!(is_p_stable(&Trop::finite(2.0), 5));
    }

    #[test]
    fn stable_star_on_trop() {
        // star(a) = min(0, a, 2a, ...) = 0 = tropical one.
        use crate::traits::PreSemiring;
        assert_eq!(stable_star(&Trop::finite(4.0), 0), Trop::one());
    }
}
