//! The bilattice `FOUR` (Sec. 7.3, Fig. 5): Belnap's four-valued logic.
//!
//! Carrier `{⊥, 0, 1, ⊤}` where `⊤` means "both false and true"
//! (contradiction). The semiring operations are lub (`∨`) and glb (`∧`) of
//! the **truth** lattice `0 ≤_t ⊥,⊤ ≤_t 1` (with `⊥`, `⊤` incomparable:
//! `⊥ ∨ ⊤ = 1`, `⊥ ∧ ⊤ = 0`); the POPS order is the **knowledge** order
//! `⊥ ≤_k 0,1 ≤_k ⊤`.
//!
//! Fitting (Prop. 7.1 in \[21\]) showed `⊤` never occurs in the least
//! fixpoint w.r.t. `≤_k`; the reproduction harness checks this on random
//! win-move instances (experiment E29).

use crate::traits::*;

/// A Belnap four-valued truth value.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Four {
    /// Neither false nor true (`⊥`).
    Undef,
    /// False (`0`).
    False,
    /// True (`1`).
    True,
    /// Both false and true (`⊤`).
    Both,
}

impl Four {
    /// (truth-knowledge) coordinates: truth in {0,1}, evidence-for /
    /// evidence-against encoding. `⊥=(f:0,t:0)`, `0=(f:1,t:0)`,
    /// `1=(f:0,t:1)`, `⊤=(f:1,t:1)`.
    fn coords(self) -> (bool, bool) {
        // (evidence_true, evidence_false)
        match self {
            Four::Undef => (false, false),
            Four::False => (false, true),
            Four::True => (true, false),
            Four::Both => (true, true),
        }
    }

    fn from_coords(t: bool, f: bool) -> Four {
        match (t, f) {
            (false, false) => Four::Undef,
            (false, true) => Four::False,
            (true, false) => Four::True,
            (true, true) => Four::Both,
        }
    }

    /// Belnap negation: swaps 0 and 1, fixes `⊥` and `⊤`. Monotone in `≤_k`.
    #[allow(clippy::should_implement_trait)] // domain operation, not std::ops::Not
    pub fn not(self) -> Four {
        let (t, f) = self.coords();
        Four::from_coords(f, t)
    }

    /// Embeds a `THREE` value.
    pub fn from_three(x: crate::three::Three) -> Four {
        match x {
            crate::three::Three::Undef => Four::Undef,
            crate::three::Three::False => Four::False,
            crate::three::Three::True => Four::True,
        }
    }
}

impl PreSemiring for Four {
    fn zero() -> Self {
        Four::False
    }
    fn one() -> Self {
        Four::True
    }
    /// `∨`: lub of the truth lattice. In coordinates:
    /// evidence-for is or-ed, evidence-against is and-ed.
    fn add(&self, rhs: &Self) -> Self {
        let (t1, f1) = self.coords();
        let (t2, f2) = rhs.coords();
        Four::from_coords(t1 || t2, f1 && f2)
    }
    /// `∧`: glb of the truth lattice (dual).
    fn mul(&self, rhs: &Self) -> Self {
        let (t1, f1) = self.coords();
        let (t2, f2) = rhs.coords();
        Four::from_coords(t1 && t2, f1 || f2)
    }
}

impl Semiring for Four {}
impl Dioid for Four {}

impl Pops for Four {
    fn bottom() -> Self {
        Four::Undef
    }
    /// Knowledge order: more evidence of either kind is higher.
    fn leq(&self, rhs: &Self) -> bool {
        let (t1, f1) = self.coords();
        let (t2, f2) = rhs.coords();
        (!t1 || t2) && (!f1 || f2)
    }
}

impl FiniteCarrier for Four {
    fn carrier() -> Vec<Self> {
        vec![Four::Undef, Four::False, Four::True, Four::Both]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Four::*;

    #[test]
    fn truth_lattice_lub_glb() {
        assert_eq!(Undef.add(&Both), True, "⊥ ∨ ⊤ = 1 (Fig. 5)");
        assert_eq!(Undef.mul(&Both), False, "⊥ ∧ ⊤ = 0");
        assert_eq!(False.add(&True), True);
        assert_eq!(False.mul(&Undef), False);
        assert_eq!(True.mul(&Undef), Undef);
    }

    #[test]
    fn restriction_to_three_agrees() {
        use crate::three::Three;
        for x in Three::carrier() {
            for y in Three::carrier() {
                assert_eq!(
                    Four::from_three(x.add(&y)),
                    Four::from_three(x).add(&Four::from_three(y))
                );
                assert_eq!(
                    Four::from_three(x.mul(&y)),
                    Four::from_three(x).mul(&Four::from_three(y))
                );
            }
        }
    }

    #[test]
    fn knowledge_order_diamond() {
        assert!(Undef.leq(&False) && Undef.leq(&True));
        assert!(False.leq(&Both) && True.leq(&Both));
        assert!(!False.leq(&True) && !True.leq(&False));
        assert!(Undef.leq(&Both));
        assert_eq!(Four::bottom(), Undef);
    }

    #[test]
    fn not_extended_with_top() {
        assert_eq!(Both.not(), Both);
        assert_eq!(Undef.not(), Undef);
        assert_eq!(True.not(), False);
    }

    #[test]
    fn ops_monotone_in_knowledge_order() {
        for x in Four::carrier() {
            for x2 in Four::carrier() {
                if !x.leq(&x2) {
                    continue;
                }
                for y in Four::carrier() {
                    for y2 in Four::carrier() {
                        if !y.leq(&y2) {
                            continue;
                        }
                        assert!(x.add(&y).leq(&x2.add(&y2)));
                        assert!(x.mul(&y).leq(&x2.mul(&y2)));
                    }
                }
            }
        }
    }
}
