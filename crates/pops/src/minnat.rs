//! The tropical semiring over naturals `(ℕ ∪ {∞}, min, +, ∞, 0)`
//! (Sec. 6.1 lists it among the complete distributive dioids).
//!
//! Integer twin of [`crate::trop::Trop`]; useful for exact hop-count /
//! BFS-distance workloads and for exhaustive small-universe law tests.

use crate::traits::*;

/// A cost in `ℕ ∪ {∞}` (`u64::MAX` encodes `∞`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MinNat(pub u64);

impl MinNat {
    /// The infinite cost (tropical zero / `⊥`).
    pub const INF: MinNat = MinNat(u64::MAX);

    /// A finite cost.
    pub fn finite(c: u64) -> MinNat {
        assert!(c != u64::MAX, "u64::MAX is reserved for ∞");
        MinNat(c)
    }

    /// Whether the cost is finite.
    pub fn is_finite(&self) -> bool {
        self.0 != u64::MAX
    }
}

impl PreSemiring for MinNat {
    fn zero() -> Self {
        MinNat::INF
    }
    fn one() -> Self {
        MinNat(0)
    }
    fn add(&self, rhs: &Self) -> Self {
        MinNat(self.0.min(rhs.0))
    }
    fn mul(&self, rhs: &Self) -> Self {
        MinNat(self.0.saturating_add(rhs.0))
    }
}

impl Semiring for MinNat {}
impl Dioid for MinNat {}
impl NaturallyOrdered for MinNat {}
// `min(0, x) = 0`: 0-stable, worklist/priority evaluation applies.
impl Absorptive for MinNat {}

impl TotallyOrderedDioid for MinNat {
    fn chain_cmp(&self, other: &Self) -> std::cmp::Ordering {
        // ⊑ is the reverse numeric order.
        other.0.cmp(&self.0)
    }
}

impl Pops for MinNat {
    fn bottom() -> Self {
        MinNat::INF
    }
    fn leq(&self, rhs: &Self) -> bool {
        self.0 >= rhs.0
    }
}

impl CompleteDistributiveDioid for MinNat {
    fn minus(&self, rhs: &Self) -> Self {
        if self.0 < rhs.0 {
            *self
        } else {
            MinNat::INF
        }
    }
}

impl StarSemiring for MinNat {
    fn star(&self) -> Self {
        MinNat(0)
    }
}

impl UniformlyStable for MinNat {
    fn uniform_stability_index() -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_plus() {
        assert_eq!(MinNat(3).add(&MinNat(5)), MinNat(3));
        assert_eq!(MinNat(3).mul(&MinNat(5)), MinNat(8));
        assert_eq!(MinNat::INF.mul(&MinNat(5)), MinNat::INF);
        assert_eq!(MinNat::INF.add(&MinNat(5)), MinNat(5));
    }

    #[test]
    fn minus_mirrors_trop() {
        assert_eq!(MinNat(3).minus(&MinNat(5)), MinNat(3));
        assert_eq!(MinNat(5).minus(&MinNat(3)), MinNat::INF);
        assert_eq!(MinNat(5).minus(&MinNat(5)), MinNat::INF);
    }

    #[test]
    fn frontier_marker_laws_hold_on_samples() {
        let sample: Vec<MinNat> = [0, 1, 2, 7, u64::MAX - 1]
            .iter()
            .map(|&c| MinNat::finite(c))
            .chain([MinNat::INF])
            .collect();
        let v = crate::checker::absorptive_laws_on(&sample);
        assert!(v.is_empty(), "{v:?}");
        let v = crate::checker::chain_order_laws_on(&sample);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn zero_stable() {
        use crate::stability::element_stability_index;
        assert_eq!(element_stability_index(&MinNat(7), 3), Some(0));
    }
}
