//! The core semiring `P ⊕ ⊥` of a POPS (Proposition 2.4).
//!
//! For a POPS with strict `⊗`, the subset `P ⊕ ⊥ = { x ⊕ ⊥ | x ∈ P }` is a
//! semiring with units `0 ⊕ ⊥` and `1 ⊕ ⊥`. Convergence of datalog° on
//! `P` is governed entirely by stability of this core (Theorem 1.2):
//! recursive ground atoms live inside it (Prop. 5.16). This module
//! computes the core concretely for finite POPS and checks Prop. 2.4's
//! claims by enumeration.

use crate::checker::Violation;
use crate::traits::{FiniteCarrier, Pops};

/// The carrier of the core semiring `P ⊕ ⊥`, deduplicated and sorted.
pub fn core_carrier<P: Pops + FiniteCarrier>() -> Vec<P> {
    let bot = P::bottom();
    let mut out: Vec<P> = P::carrier().into_iter().map(|x| x.add(&bot)).collect();
    out.sort();
    out.dedup();
    out
}

/// Checks Proposition 2.4 by enumeration: the core is closed under `⊕`
/// and `⊗`, with `⊥ = 0 ⊕ ⊥` as additive and `1 ⊕ ⊥` as multiplicative
/// identity, and `⊥` absorbing for `⊗` inside the core.
pub fn proposition_2_4<P: Pops + FiniteCarrier>() -> Vec<Violation> {
    let mut v = vec![];
    let mut check = |ok: bool, law: String| {
        if !ok {
            v.push(Violation { law });
        }
    };
    let core = core_carrier::<P>();
    let bot = P::bottom();
    let zero_c = P::zero().add(&bot);
    let one_c = P::one().add(&bot);
    check(core.contains(&zero_c), "0⊕⊥ ∈ core".into());
    check(core.contains(&one_c), "1⊕⊥ ∈ core".into());
    for x in &core {
        check(core.contains(&x.add(&bot)), format!("{x:?} ⊕ ⊥ ∈ core"));
        check(&x.add(&zero_c) == x, format!("0⊕⊥ is ⊕-identity at {x:?}"));
        check(&x.mul(&one_c) == x, format!("1⊕⊥ is ⊗-identity at {x:?}"));
        check(
            x.mul(&zero_c) == zero_c,
            format!("0⊕⊥ absorbs ⊗ at {x:?} (semiring!)"),
        );
        for y in &core {
            check(core.contains(&x.add(y)), format!("⊕-closed at {x:?},{y:?}"));
            check(core.contains(&x.mul(y)), format!("⊗-closed at {x:?},{y:?}"));
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boolean::Bool;
    use crate::completed::Completed;
    use crate::lifted::LiftedBool;
    use crate::three::Three;
    use crate::traits::PreSemiring;

    #[test]
    fn lifted_core_is_trivial() {
        // S⊥ ⊕ ⊥ = {⊥} (Sec. 2.5.1).
        let core = core_carrier::<LiftedBool>();
        assert_eq!(core, vec![LiftedBool::Bot]);
        assert!(proposition_2_4::<LiftedBool>().is_empty());
    }

    #[test]
    fn completed_core_is_trivial() {
        let core = core_carrier::<Completed<Bool>>();
        assert_eq!(core.len(), 1);
        assert!(proposition_2_4::<Completed<Bool>>().is_empty());
    }

    #[test]
    fn three_core_is_bottom_and_true() {
        // THREE ∨ ⊥ = {⊥, 1} ≅ 𝔹 (Sec. 2.5.2). Note THREE's ⊗ is not
        // strict, yet Prop. 2.4's conclusions still hold here because
        // 0 ∨ ⊥ = ⊥ pushes 0 onto ⊥ inside the core.
        let core = core_carrier::<Three>();
        assert_eq!(core, vec![Three::Undef, Three::True]);
        assert!(proposition_2_4::<Three>().is_empty());
        // The isomorphism with B: ⊥ ↦ 0, 1 ↦ 1 preserves both operations.
        let iso = |x: &Three| *x == Three::True;
        for x in &core {
            for y in &core {
                assert_eq!(iso(&x.add(y)), iso(x) || iso(y));
                assert_eq!(iso(&x.mul(y)), iso(x) && iso(y));
            }
        }
    }

    #[test]
    fn naturally_ordered_core_is_everything() {
        // For a naturally ordered semiring, ⊥ = 0 and the core is P itself.
        let core = core_carrier::<Bool>();
        assert_eq!(core.len(), Bool::carrier().len());
        assert!(proposition_2_4::<Bool>().is_empty());
    }

    /// Example 2.11: the product of a naturally ordered semiring with a
    /// strict-⊕ POPS has the non-trivial core S × {⊥}.
    #[test]
    fn product_core_nontrivial() {
        use crate::product::Product;
        type E = Product<Bool, LiftedBool>;
        let core = core_carrier::<E>();
        assert_eq!(core.len(), 2); // (0,⊥) and (1,⊥)
        assert!(core.iter().all(|Product(_, b)| *b == LiftedBool::Bot));
        assert!(proposition_2_4::<E>().is_empty());
    }
}
