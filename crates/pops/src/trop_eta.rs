//! The stable but not uniformly stable semiring `Trop⁺_{≤η}` (Example 2.10).
//!
//! Elements are nonempty finite *sets* `x ⊆ ℕ ∪ {∞}` with
//! `max(x) ≤ min(x) + η`; `x ⊕ y = min_{≤η}(x ∪ y)` and
//! `x ⊗ y = min_{≤η}(x + y)` where `min_{≤η}` retains the elements within
//! `η` of the minimum. A datalog° program over `Trop⁺_{≤η}` computes all
//! path lengths within `η` of the shortest (Example 4.1).
//!
//! **Stability (Proposition 5.4):** every element is stable (index
//! `⌈η/x₀⌉` where `x₀` is the least nonzero member), but no single `p`
//! works for all elements — `{a}` with `a < η/(p+1)` defeats any `p`.
//!
//! *Substitution note (see DESIGN.md):* the paper uses real costs; we use
//! integer costs with a const-generic `η`, which preserves every stability
//! phenomenon while keeping elements exactly comparable.

use crate::traits::*;
use std::collections::BTreeSet;

/// Integer cost with `u64::MAX` playing the role of `∞`.
pub type Cost = u64;
/// The infinite cost.
pub const INF_COST: Cost = u64::MAX;

fn sat_add(a: Cost, b: Cost) -> Cost {
    a.saturating_add(b)
}

/// A `Trop⁺_{≤η}` element: a nonempty set of costs within `η` of its min.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TropEta<const ETA: u64> {
    /// Invariant: nonempty; all members `≤ min + η` (with `∞` allowed only
    /// when it is the minimum, i.e. the singleton `{∞}`).
    set: BTreeSet<Cost>,
}

impl<const ETA: u64> TropEta<ETA> {
    /// Builds an element from arbitrary costs, applying `min_{≤η}`.
    pub fn from_costs(costs: &[Cost]) -> Self {
        assert!(!costs.is_empty(), "TropEta elements are nonempty sets");
        Self::min_eta(costs.iter().copied().collect())
    }

    /// The singleton `{c}`.
    pub fn singleton(c: Cost) -> Self {
        TropEta {
            set: std::iter::once(c).collect(),
        }
    }

    /// `min_{≤η}(x)`: retain members within `η` of the minimum.
    fn min_eta(set: BTreeSet<Cost>) -> Self {
        let min = *set.iter().next().expect("nonempty");
        let cutoff = sat_add(min, ETA);
        TropEta {
            set: set.into_iter().take_while(|&c| c <= cutoff).collect(),
        }
    }

    /// The member costs, ascending.
    pub fn costs(&self) -> impl Iterator<Item = Cost> + '_ {
        self.set.iter().copied()
    }

    /// The minimum cost.
    pub fn min_cost(&self) -> Cost {
        *self.set.iter().next().expect("nonempty")
    }
}

impl<const ETA: u64> PreSemiring for TropEta<ETA> {
    fn zero() -> Self {
        Self::singleton(INF_COST)
    }
    fn one() -> Self {
        Self::singleton(0)
    }
    fn add(&self, rhs: &Self) -> Self {
        Self::min_eta(self.set.union(&rhs.set).copied().collect())
    }
    fn mul(&self, rhs: &Self) -> Self {
        let mut sums = BTreeSet::new();
        for &a in &self.set {
            for &b in &rhs.set {
                sums.insert(sat_add(a, b));
            }
        }
        Self::min_eta(sums)
    }
}

impl<const ETA: u64> Semiring for TropEta<ETA> {}
impl<const ETA: u64> Dioid for TropEta<ETA> {}
impl<const ETA: u64> NaturallyOrdered for TropEta<ETA> {}

impl<const ETA: u64> Pops for TropEta<ETA> {
    fn bottom() -> Self {
        Self::zero()
    }

    /// Natural order: `x ⊑ y ⟺ ∃z. min_{≤η}(x ∪ z) = y`, which holds iff
    /// `min(y) ≤ min(x)` and every member of `x` within `η` of `min(y)`
    /// belongs to `y` (verified against brute force in tests).
    fn leq(&self, rhs: &Self) -> bool {
        let ymin = rhs.min_cost();
        if ymin > self.min_cost() {
            return false;
        }
        let cutoff = sat_add(ymin, ETA);
        self.set
            .iter()
            .take_while(|&&u| u <= cutoff)
            .all(|u| rhs.set.contains(u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stability::{element_stability_index, is_p_stable};

    // η = 6 stands in for the paper's η = 6.5 (integer costs).
    type T = TropEta<6>;

    #[test]
    fn example_2_10_ops() {
        // Paper (η=6.5): {3,7} ⊕ {5,9,10} = {3,5,7,9}; with η=6 identical.
        let x = T::from_costs(&[3, 7]);
        let y = T::from_costs(&[5, 9, 10]);
        assert_eq!(x.add(&y), T::from_costs(&[3, 5, 7, 9]));
        // {1,6} ⊗ {1,2,3} = {2,3,4,7,8}
        let a = T::from_costs(&[1, 6]);
        let b = T::from_costs(&[1, 2, 3]);
        assert_eq!(a.mul(&b), T::from_costs(&[2, 3, 4, 7, 8]));
    }

    #[test]
    fn min_eta_prunes() {
        assert_eq!(T::from_costs(&[3, 7, 20]), T::from_costs(&[3, 7]));
        assert_eq!(T::from_costs(&[3, 9]), T::from_costs(&[3, 9]));
        assert_eq!(T::from_costs(&[3, 10]), T::from_costs(&[3]));
    }

    #[test]
    fn eq_16_identities() {
        let x = T::from_costs(&[1, 4]);
        let y = T::from_costs(&[2, 5]);
        let z = T::from_costs(&[0, 3]);
        assert_eq!(x.add(&y).add(&z), x.add(&y.add(&z)));
        assert_eq!(x.mul(&y).mul(&z), x.mul(&y.mul(&z)));
        assert_eq!(x.mul(&y.add(&z)), x.mul(&y).add(&x.mul(&z)));
    }

    #[test]
    fn proposition_5_4_stable_with_index_ceil_eta_over_x0() {
        // c = {a}: stability index should be ⌈η/a⌉ when 0 < a.
        // η=6, a=2 -> c^(3) = {0,2,4,6} and c^(4) adds 8 > 0+6, pruned.
        let c = T::singleton(2);
        assert_eq!(element_stability_index(&c, 100), Some(3));
        let c1 = T::singleton(1);
        assert_eq!(element_stability_index(&c1, 100), Some(6));
        // {0} is 0-stable.
        assert_eq!(element_stability_index(&T::singleton(0), 10), Some(0));
        assert_eq!(element_stability_index(&T::zero(), 10), Some(0));
    }

    #[test]
    fn proposition_5_4_not_uniformly_stable() {
        // For ETA = 60, the element {a} with a < η/(p+1) is not p-stable:
        // take p = 5, a = 7 < 10: 1,7,14,...,42 all within 60 of 0.
        type U = TropEta<60>;
        let a = U::singleton(7);
        assert!(!is_p_stable(&a, 5));
        assert!(is_p_stable(&a, 9)); // the paper's bound p = ⌈60/7⌉ = 9 works
                                     // ... and the minimal index is 8 (7·8 = 56 ≤ 60 < 63 = 7·9).
        assert_eq!(element_stability_index(&a, 100), Some(8));
    }

    #[test]
    fn eta_zero_degenerates_to_trop() {
        type U = TropEta<0>;
        let x = U::singleton(3);
        let y = U::singleton(5);
        assert_eq!(x.add(&y), U::singleton(3));
        assert_eq!(x.mul(&y), U::singleton(8));
        assert_eq!(element_stability_index(&x, 5), Some(0));
    }

    /// Brute-force natural-order check on a small universe.
    #[test]
    fn natural_order_matches_brute_force() {
        type U = TropEta<2>;
        // All elements with members from {0,1,2,3,∞}.
        let grid: Vec<Cost> = vec![0, 1, 2, 3, INF_COST];
        let mut elements = vec![];
        for mask in 1u32..(1 << grid.len()) {
            let costs: Vec<Cost> = grid
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &c)| c)
                .collect();
            let e = U::from_costs(&costs);
            if !elements.contains(&e) {
                elements.push(e);
            }
        }
        for x in &elements {
            for y in &elements {
                let brute = elements.iter().any(|z| &x.add(z) == y);
                assert_eq!(x.leq(y), brute, "leq mismatch x={x:?} y={y:?}");
            }
        }
    }
}
