//! A totally ordered, hashable, NaN-free wrapper around `f64`.
//!
//! Fixpoint detection requires exact equality on values, and relations use
//! ordered containers, so raw `f64` (no `Eq`/`Ord`/`Hash`) cannot be used
//! directly. `F64` excludes NaN, normalizes `-0.0` to `0.0`, and compares /
//! hashes by the IEEE-754 bit pattern of the normalized value, which for
//! NaN-free values coincides with the numeric order.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A NaN-free `f64` with total order, exact equality and hashing.
///
/// Infinity is allowed (the tropical semirings use `+∞` as their zero).
#[derive(Clone, Copy)]
pub struct F64(f64);

impl F64 {
    /// Positive infinity (`∞`, the tropical `0`).
    pub const INFINITY: F64 = F64(f64::INFINITY);
    /// Negative infinity (`-∞`, the max-plus `0`).
    pub const NEG_INFINITY: F64 = F64(f64::NEG_INFINITY);
    /// Zero.
    pub const ZERO: F64 = F64(0.0);
    /// One.
    pub const ONE: F64 = F64(1.0);

    /// Wraps a finite or infinite `f64`; returns `None` on NaN.
    pub fn new(x: f64) -> Option<F64> {
        if x.is_nan() {
            None
        } else if x == 0.0 {
            Some(F64(0.0)) // normalize -0.0
        } else {
            Some(F64(x))
        }
    }

    /// Wraps an `f64`, panicking on NaN. Shorthand used pervasively in
    /// tests and examples.
    pub fn of(x: f64) -> F64 {
        F64::new(x).expect("F64::of: NaN is not a valid value")
    }

    /// The underlying `f64`.
    pub fn get(self) -> f64 {
        self.0
    }

    /// Whether the value is finite.
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Saturating addition: `∞ + (-∞)` would be NaN, so the caller must not
    /// mix opposite infinities; this is enforced with a debug assertion and
    /// resolved in favour of the left operand's infinity in release builds.
    #[allow(clippy::should_implement_trait)] // named for semiring symmetry
    pub fn add(self, rhs: F64) -> F64 {
        let s = self.0 + rhs.0;
        if s.is_nan() {
            debug_assert!(false, "F64::add produced NaN: {} + {}", self.0, rhs.0);
            return if self.0.is_infinite() { self } else { rhs };
        }
        F64::of(s)
    }

    /// Multiplication; `0 × ∞` is defined as `0` (the convention for
    /// ω-continuous semirings), not NaN.
    #[allow(clippy::should_implement_trait)] // named for semiring symmetry
    pub fn mul(self, rhs: F64) -> F64 {
        if self.0 == 0.0 || rhs.0 == 0.0 {
            return F64::ZERO;
        }
        F64::of(self.0 * rhs.0)
    }

    /// Numeric minimum.
    pub fn min(self, rhs: F64) -> F64 {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// Numeric maximum.
    pub fn max(self, rhs: F64) -> F64 {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }
}

impl PartialEq for F64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}
impl Eq for F64 {}

impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for F64 {
    fn cmp(&self, other: &Self) -> Ordering {
        // NaN is excluded by construction, so partial_cmp is total.
        self.0.partial_cmp(&other.0).expect("F64 is NaN-free")
    }
}

impl Hash for F64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl fmt::Debug for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == f64::INFINITY {
            write!(f, "∞")
        } else if self.0 == f64::NEG_INFINITY {
            write!(f, "-∞")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl fmt::Display for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<f64> for F64 {
    fn from(x: f64) -> Self {
        F64::of(x)
    }
}

impl From<i32> for F64 {
    fn from(x: i32) -> Self {
        F64::of(x as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(x: F64) -> u64 {
        let mut h = DefaultHasher::new();
        x.hash(&mut h);
        h.finish()
    }

    #[test]
    fn nan_rejected() {
        assert!(F64::new(f64::NAN).is_none());
        assert!(F64::new(1.5).is_some());
        assert!(F64::new(f64::INFINITY).is_some());
    }

    #[test]
    fn negative_zero_normalized() {
        assert_eq!(F64::of(-0.0), F64::of(0.0));
        assert_eq!(hash_of(F64::of(-0.0)), hash_of(F64::of(0.0)));
    }

    #[test]
    fn total_order_with_infinity() {
        assert!(F64::NEG_INFINITY < F64::of(-3.0));
        assert!(F64::of(-3.0) < F64::ZERO);
        assert!(F64::ZERO < F64::of(7.5));
        assert!(F64::of(7.5) < F64::INFINITY);
    }

    #[test]
    fn zero_times_infinity_is_zero() {
        assert_eq!(F64::ZERO.mul(F64::INFINITY), F64::ZERO);
        assert_eq!(F64::INFINITY.mul(F64::ZERO), F64::ZERO);
    }

    #[test]
    fn addition_with_infinity() {
        assert_eq!(F64::INFINITY.add(F64::of(3.0)), F64::INFINITY);
        assert_eq!(F64::of(2.0).add(F64::of(3.0)), F64::of(5.0));
    }

    #[test]
    fn min_max() {
        assert_eq!(F64::of(2.0).min(F64::of(3.0)), F64::of(2.0));
        assert_eq!(F64::of(2.0).max(F64::of(3.0)), F64::of(3.0));
        assert_eq!(F64::INFINITY.min(F64::of(3.0)), F64::of(3.0));
    }

    #[test]
    fn display_infinity() {
        assert_eq!(format!("{}", F64::INFINITY), "∞");
        assert_eq!(format!("{}", F64::of(4.0)), "4");
    }
}
