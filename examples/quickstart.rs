//! Quickstart: one datalog° program, three semirings.
//!
//! The all-pairs program of Example 1.1,
//!
//! ```text
//! T(X, Y) :- E(X, Y) + T(X, Z) * E(Z, Y).
//! ```
//!
//! parsed from text and run over `𝔹` (transitive closure), `Trop⁺`
//! (all-pairs shortest paths) and `Trop⁺₁` (two shortest path lengths).
//!
//! Run with `cargo run --example quickstart`.

use datalog_o::core::{naive_eval, parse_program, BoolDatabase, Database, Program, Relation};
use datalog_o::pops::{Bool, Trop, TropP};

const PROGRAM: &str = "T(X, Y) :- E(X, Y) + T(X, Z) * E(Z, Y).";

fn edges<P: datalog_o::pops::Pops>(weight: impl Fn(f64) -> P) -> Database<P> {
    // The Fig. 2(a) graph.
    let pairs = [
        ("a", "b", 1.0),
        ("b", "a", 2.0),
        ("b", "c", 3.0),
        ("c", "d", 4.0),
        ("a", "c", 5.0),
    ];
    let mut db = Database::new();
    db.insert(
        "E",
        Relation::from_pairs(
            2,
            pairs
                .iter()
                .map(|(x, y, w)| (vec![(*x).into(), (*y).into()], weight(*w))),
        ),
    );
    db
}

fn main() {
    // --- over 𝔹: which pairs are connected? --------------------------------
    let prog: Program<Bool> = parse_program(PROGRAM).expect("parses");
    let out = naive_eval(&prog, &edges(|_| Bool(true)), &BoolDatabase::new(), 1000).unwrap();
    println!("over B (transitive closure):");
    for (t, _) in out.get("T").unwrap().support() {
        print!(" {}", datalog_o::core::value::fmt_tuple(t));
    }
    println!("\n");

    // --- over Trop⁺: how far apart? -----------------------------------------
    let prog: Program<Trop> = parse_program(PROGRAM).expect("parses");
    let out = naive_eval(&prog, &edges(Trop::finite), &BoolDatabase::new(), 1000).unwrap();
    println!("over Trop+ (all-pairs shortest paths):");
    for (t, v) in out.get("T").unwrap().support() {
        println!("  T{} = {v:?}", datalog_o::core::value::fmt_tuple(t));
    }
    println!();

    // --- over Trop⁺₁: the two best paths ------------------------------------
    let prog: Program<TropP<1>> = {
        // TropP has no text literal; build the same AST generically.
        datalog_o::core::examples_lib::apsp_program()
    };
    let out = naive_eval(
        &prog,
        &edges(|w| TropP::<1>::from_costs(&[w])),
        &BoolDatabase::new(),
        1000,
    )
    .unwrap();
    println!("over Trop+_1 (two shortest path lengths):");
    for (t, v) in out.get("T").unwrap().support() {
        println!(
            "  T{} = {:?}",
            datalog_o::core::value::fmt_tuple(t),
            v.costs()
        );
    }
}
