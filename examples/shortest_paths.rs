//! Example 4.1 end-to-end: single-source shortest paths with the naïve and
//! semi-naïve algorithms, full iteration trace, and the tropical delta
//! rule of eq. (7).
//!
//! Run with `cargo run --example shortest_paths`.

use datalog_o::core::examples_lib::sssp_trop;
use datalog_o::core::{ground_sparse, naive_eval_trace, seminaive_eval_system, BoolDatabase};

fn main() {
    let (program, edb) = sssp_trop("a");
    let sys = ground_sparse(&program, &edb, &BoolDatabase::new());

    // The naïve algorithm, with the full chain of IDB instances — compare
    // against the table printed in the paper (Example 4.1).
    let trace = naive_eval_trace(&sys, 1000);
    println!("naive evaluation trace (Example 4.1, Fig. 2(a)):\n");
    print!("{}", trace.render());

    // The semi-naïve algorithm (Algorithm 3 with the tropical ⊖ of eq. 6)
    // computes the same fixpoint touching far fewer monomials.
    let (outcome, stats) = seminaive_eval_system(&sys, 1000);
    let out = outcome.unwrap();
    println!("\nsemi-naive reached the same fixpoint:");
    for (t, v) in out.get("L").unwrap().support() {
        println!("  L{} = {v:?}", datalog_o::core::value::fmt_tuple(t));
    }
    println!(
        "\nwork: {} differential monomial expansions across {} iterations",
        stats.monomial_evals, stats.iterations
    );
    assert_eq!(
        &out,
        trace
            .iterates
            .last()
            .map(|x| sys.to_database(x))
            .as_ref()
            .unwrap()
    );
    println!("naive and semi-naive agree (Theorem 6.4).");
}
