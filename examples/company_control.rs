//! Example 4.3: company control — recursion through aggregation *and* a
//! monotone value-space boundary.
//!
//! `x` controls `y` when the shares it owns directly plus the shares owned
//! by companies it controls exceed 50%. The program runs over `ℝ₊` with
//! the monotone threshold `[v > 0.5]` as an interpreted value function.
//!
//! Run with `cargo run --example company_control`.

use datalog_o::core::examples_lib::company_control;
use datalog_o::core::naive_eval;
use datalog_o::pops::Pops;

fn main() {
    let companies = ["acme", "beta", "corp", "dyne"];
    let shares = [
        ("acme", "beta", 0.55), // direct majority
        ("acme", "corp", 0.40),
        ("beta", "corp", 0.15), // acme + beta = 0.55 of corp
        ("acme", "dyne", 0.10),
        ("beta", "dyne", 0.15),
        ("corp", "dyne", 0.30), // acme + beta + corp = 0.55 of dyne!
    ];
    let (prog, pops, bools) = company_control(&companies, &shares);
    let out = naive_eval(&prog, &pops, &bools, 10_000).unwrap();
    let t = out.get("T").unwrap();

    println!("accumulated share weights T(x, y):");
    for (tuple, v) in t.support() {
        if !v.is_bottom() {
            println!(
                "  T{} = {:.2}",
                datalog_o::core::value::fmt_tuple(tuple),
                v.get()
            );
        }
    }
    println!("\ncontrol relation C(x, y) = [T(x, y) > 0.5]:");
    for (tuple, v) in t.support() {
        if v.get() > 0.5 {
            println!("  {} controls {}", tuple[0], tuple[1]);
        }
    }
    // Transitive control: acme controls beta directly, corp through beta,
    // and dyne through the whole chain.
}
