//! Sec. 7: the win-move game — negation through the POPS `THREE`.
//!
//! Computes the winning positions of the pebble game on the Fig. 4 graph
//! three ways (well-founded / Fitting-THREE / retrograde game solver) and
//! shows they agree; drawn positions are exactly the ⊥ atoms.
//!
//! Run with `cargo run --example win_move`.

use datalog_o::wellfounded::{
    fig4_adjacency, fitting_lfp, well_founded, win_move_program, WinMoveInstance,
};

fn main() {
    let program = win_move_program(&fig4_adjacency());

    // Fitting's three-valued least fixpoint over THREE (Sec. 7.2).
    let (lfp, trace) = fitting_lfp(&program);
    println!("datalog° over THREE, knowledge-order iterates:");
    for (t, interp) in trace.iter().enumerate() {
        let row: Vec<String> = program
            .atom_names
            .iter()
            .zip(interp)
            .map(|(n, v)| format!("{n}={v:?}"))
            .collect();
        println!("  W({t}): {}", row.join("  "));
    }

    // The alternating fixpoint (Sec. 7.1) agrees.
    let wf = well_founded(&program);
    println!("\nwell-founded model (alternating fixpoint):");
    for (name, a) in program.atom_names.iter().zip(&wf.assignment) {
        println!("  {name} = {a:?}");
    }

    // And the game-theoretic oracle agrees too.
    let inst = WinMoveInstance {
        n: 6,
        edges: vec![(0, 1), (0, 2), (1, 0), (2, 3), (2, 4), (3, 4), (4, 5)],
    };
    match inst.check_equivalence() {
        Ok(_) => println!(
            "\nall three semantics agree: won = {{c, e}}, lost = {{d, f}}, drawn = {{a, b}}"
        ),
        Err(e) => println!("\nDISAGREEMENT: {e}"),
    }
    let _ = lfp;
}
