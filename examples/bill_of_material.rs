//! Example 4.2: aggregation inside recursion over the lifted reals.
//!
//! The bill-of-material program `T(x) :- C(x) + Σ_y { T(y) | E(x,y) }`
//! diverges over ℕ when the subpart graph has cycles, but over `ℝ_⊥`
//! the cyclic parts settle at ⊥ ("cost undefined") while the acyclic
//! parts get their true totals — the paper's motivating POPS example.
//!
//! Run with `cargo run --example bill_of_material`.

use datalog_o::core::examples_lib::{bom_lifted_reals, bom_naturals};
use datalog_o::core::{naive_eval, EvalOutcome};
use datalog_o::pops::Lifted;

fn main() {
    // Over ℕ: the naive loop keeps growing on the a↔b cycle.
    let (prog_n, pops_n, bools_n) = bom_naturals();
    match naive_eval(&prog_n, &pops_n, &bools_n, 25) {
        EvalOutcome::Diverged { last, cap, .. } => {
            println!("over N: diverged (cap {cap}); the cycle keeps inflating:");
            for (t, v) in last.get("T").unwrap().support() {
                println!("  T{} grew to {v:?}", datalog_o::core::value::fmt_tuple(t));
            }
        }
        EvalOutcome::Converged { .. } => unreachable!("cycles diverge over N"),
    }

    // Over ℝ_⊥: converges; cyclic parts are ⊥.
    let (prog, pops, bools) = bom_lifted_reals();
    let out = naive_eval(&prog, &pops, &bools, 1000).unwrap();
    println!("\nover the lifted reals R_⊥ (converges in 3 steps):");
    let t = out.get("T").unwrap();
    for name in ["a", "b", "c", "d"] {
        let v = t.get(&vec![name.into()]);
        match v {
            Lifted::Bot => println!("  T({name}) = ⊥   (part of a subpart cycle)"),
            Lifted::Val(x) => println!("  T({name}) = {}", x.get()),
        }
    }
}
