//! # datalog-o — Datalog over (pre-)semirings
//!
//! Umbrella crate re-exporting the full workspace: a production-quality
//! implementation of *Convergence of Datalog over (Pre-) Semirings*
//! (PODS 2022). See the README for a tour and DESIGN.md for the system
//! inventory.
//!
//! ```
//! use datalog_o::core::{parse_program, naive_eval, BoolDatabase, Database, Relation, Program};
//! use datalog_o::pops::Trop;
//!
//! // All-pairs shortest paths = transitive closure over (min, +).
//! let program: Program<Trop> =
//!     parse_program("T(X, Y) :- E(X, Y) + T(X, Z) * E(Z, Y).").unwrap();
//!
//! let mut edb = Database::new();
//! edb.insert("E", Relation::from_pairs(2, vec![
//!     (vec!["a".into(), "b".into()], Trop::finite(1.0)),
//!     (vec!["b".into(), "c".into()], Trop::finite(3.0)),
//! ]));
//!
//! let out = naive_eval(&program, &edb, &BoolDatabase::new(), 10_000).unwrap();
//! assert_eq!(out.get("T").unwrap()
//!               .get(&vec!["a".into(), "c".into()]), Trop::finite(4.0));
//! ```

#![forbid(unsafe_code)]

pub use dlo_core as core;
pub use dlo_engine as engine;
pub use dlo_fixpoint as fixpoint;
pub use dlo_pops as pops;
pub use dlo_provenance as provenance;
pub use dlo_semilin as semilin;
pub use dlo_wellfounded as wellfounded;

// The engine backend's entry points at top level, next to the grounded
// and relational backends re-exported through `core`.
pub use dlo_engine::{
    engine_eval, engine_eval_interned, engine_eval_interned_edb, engine_eval_partial_interned_edb,
    engine_eval_partial_with_opts, engine_eval_with_opts, engine_naive_eval, engine_priority_eval,
    engine_priority_eval_with_opts, engine_query_eval, engine_query_eval_interned_edb,
    engine_query_eval_partial_with_opts, engine_query_eval_with_opts, engine_query_naive_eval,
    engine_query_seminaive_eval, engine_seminaive_eval, engine_seminaive_eval_interned,
    engine_seminaive_eval_interned_edb, engine_worklist_eval, engine_worklist_eval_with_opts,
    eval_with_retry, AbortedEval, AbortedQuery, AttemptLog, BudgetClass, BudgetKind, CancelToken,
    EngineOpts, EvalBudget, EvalError, EvalStats, InternedOutcome, InternedOutput, JoinMode,
    JsonlSink, Materialization, MemorySink, PartialOutput, QueryAnswer, RetryFailure, RetryPolicy,
    RetryReport, RuleProfile, SettledMark, Strategy, TraceEvent, TraceHandle, TraceSink,
};

/// Evaluates a program with the **default backend**: the execution
/// engine's parallel semi-naïve driver ([`engine_seminaive_eval`]),
/// which since the removal of the head-key-function fallback covers the
/// full language surface natively (interned, indexed, multi-threaded) —
/// including key functions in rule heads. Reach for the grounded or
/// relational backends through [`core`] only for exotic POPS outside
/// the naturally-ordered dioids, or for iteration traces — and for the
/// totally ordered absorptive dioids (`Trop`, `MinNat`, `MaxMin`,
/// `Bool`) prefer [`eval_frontier`], which runs the Dijkstra-style
/// priority frontier instead of global iterations.
///
/// # Errors
///
/// [`EvalError::Compile`] on programs the engine's columnar storage
/// cannot represent: an atom of arity > 32, or one head predicate used
/// at two arities. Never panics.
pub fn eval<P>(
    program: &core::Program<P>,
    pops_edb: &core::Database<P>,
    bool_edb: &core::BoolDatabase,
) -> Result<core::EvalOutcome<P>, EvalError>
where
    P: pops::NaturallyOrdered + pops::CompleteDistributiveDioid + Send + Sync,
{
    engine_seminaive_eval(program, pops_edb, bool_edb, core::DEFAULT_CAP)
}

/// Default divergence cap for the frontier entry point. Frontier
/// `steps` count per-value batches (or row pops), not global
/// iterations, so the iteration-scale [`core::DEFAULT_CAP`] would
/// falsely flag large *bounded* runs as diverged — one batch per
/// distinct value means a 1M-row output can legitimately need far more
/// than 100k steps.
pub const FRONTIER_DEFAULT_CAP: usize = 100_000_000;

/// Evaluates with the engine's **priority frontier**
/// ([`engine_eval`] with [`Strategy::Auto`]): worklist-driven,
/// settled-on-pop evaluation for totally ordered absorptive dioids
/// (Sec. 5 / Cor. 5.19 — every polynomial over a 0-stable semiring is
/// `N`-stable, so per-fact change propagation terminates). On
/// long-chain fixpoints this replaces one global iteration per chain
/// link with one bucket drain per distinct value, and dense batches fan
/// (settled-row × plan) tasks over the `DLO_ENGINE_THREADS` worker pool
/// with a deterministic merge — results are bit-identical at any thread
/// count. The divergence cap is [`FRONTIER_DEFAULT_CAP`] (frontier
/// steps are finer-grained than global iterations). For pipelines that
/// feed results back into the engine, [`engine_eval_interned`] skips
/// the `Database` materialization entirely.
///
/// # Errors
///
/// As [`eval`].
pub fn eval_frontier<P>(
    program: &core::Program<P>,
    pops_edb: &core::Database<P>,
    bool_edb: &core::BoolDatabase,
) -> Result<core::EvalOutcome<P>, EvalError>
where
    P: pops::NaturallyOrdered
        + pops::CompleteDistributiveDioid
        + pops::Absorptive
        + pops::TotallyOrderedDioid
        + Send
        + Sync,
{
    engine_eval(
        program,
        pops_edb,
        bool_edb,
        FRONTIER_DEFAULT_CAP,
        Strategy::Auto,
    )
}

/// **Query-driven** evaluation on the default backend (the engine's
/// parallel semi-naïve loop): the program is magic-set rewritten for
/// the query (`dlo_core::demand` — Bool-lattice demand predicates
/// guarding the POPS rules, sound for any POPS), so only the fragment
/// the query can reach is computed. The returned [`QueryAnswer`]
/// exposes the query-restricted rows ([`QueryAnswer::answers`]), the
/// full derived support for differential testing
/// ([`QueryAnswer::support`]), and the interned storage for decode-free
/// chaining.
///
/// ```
/// use datalog_o::core::{parse_program, parse_query, BoolDatabase, Database, Program, Relation};
/// use datalog_o::pops::Trop;
///
/// let program: Program<Trop> =
///     parse_program("T(X, Y) :- E(X, Y) + T(X, Z) * E(Z, Y).").unwrap();
/// let query = parse_query("?- T(\"a\", Y).").unwrap();
/// let mut edb = Database::new();
/// edb.insert("E", Relation::from_pairs(2, vec![
///     (vec!["a".into(), "b".into()], Trop::finite(1.0)),
///     (vec!["b".into(), "c".into()], Trop::finite(3.0)),
/// ]));
///
/// let answer = datalog_o::eval_query(&program, &query, &edb, &BoolDatabase::new()).unwrap();
/// assert_eq!(answer.answers()
///                  .get(&vec!["a".into(), "c".into()]), Trop::finite(4.0));
/// ```
///
/// # Errors
///
/// As [`eval`], plus [`EvalError::Compile`] on queries the rewrite
/// rejects (unknown predicate, arity mismatch).
pub fn eval_query<P>(
    program: &core::Program<P>,
    query: &core::Query,
    pops_edb: &core::Database<P>,
    bool_edb: &core::BoolDatabase,
) -> Result<QueryAnswer<P>, EvalError>
where
    P: pops::NaturallyOrdered + pops::CompleteDistributiveDioid + Send + Sync,
{
    engine_query_seminaive_eval(
        program,
        query,
        pops_edb,
        bool_edb,
        core::DEFAULT_CAP,
        &EngineOpts::default(),
    )
}

/// [`eval_query`] on the **priority frontier**: the frontier is seeded
/// from the query constants (the magic seed is the only initial
/// contribution of the rewritten program), demand spreads between
/// batches exactly like head-key minting, and answers settle on pop —
/// a single-source question against an all-pairs program does
/// Dijkstra-from-the-source work instead of the full least fixpoint
/// (`BENCH_magic.json` records the separation).
///
/// # Errors
///
/// As [`eval_query`].
pub fn eval_frontier_query<P>(
    program: &core::Program<P>,
    query: &core::Query,
    pops_edb: &core::Database<P>,
    bool_edb: &core::BoolDatabase,
) -> Result<QueryAnswer<P>, EvalError>
where
    P: pops::NaturallyOrdered
        + pops::CompleteDistributiveDioid
        + pops::Absorptive
        + pops::TotallyOrderedDioid
        + Send
        + Sync,
{
    engine_query_eval(
        program,
        query,
        pops_edb,
        bool_edb,
        FRONTIER_DEFAULT_CAP,
        Strategy::Auto,
    )
}
